type binop =
  | Add | Sub | Mul | Div | Rem
  | And | Or | Xor | Nor
  | Sll | Srl | Sra
  | Slt | Sle | Seq | Sne

type fbinop = Fadd | Fsub | Fmul | Fdiv

type cond = Eq | Ne | Lt | Le | Gt | Ge
type mark = Enter | Iter | Exit

type t =
  | Binop of binop * int * int * int
  | Binopi of binop * int * int * int
  | Li of int * int
  | Fbinop of fbinop * int * int * int
  | Fli of int * float
  | Fmov of int * int
  | Fneg of int * int
  | Cvt_i2f of int * int
  | Cvt_f2i of int * int
  | Fcmp of cond * int * int * int
  | Lw of int * int * int
  | Sw of int * int * int
  | Flw of int * int * int
  | Fsw of int * int * int
  | Branch of cond * int * int * int
  | J of int
  | Jal of int
  | Jr of int
  | Jalr of int
  | Syscall
  | Nop
  | Halt
  | Mark of mark * int

let class_of : t -> Opclass.t = function
  | Binop (Mul, _, _, _) | Binopi (Mul, _, _, _) -> Int_multiply
  | Binop ((Div | Rem), _, _, _) | Binopi ((Div | Rem), _, _, _) ->
      Int_divide
  | Binop (_, _, _, _) | Binopi (_, _, _, _) | Li _ -> Int_alu
  | Fbinop ((Fadd | Fsub), _, _, _) -> Fp_add_sub
  | Fbinop (Fmul, _, _, _) -> Fp_multiply
  | Fbinop (Fdiv, _, _, _) -> Fp_divide
  (* register moves and immediate materialisation are single-cycle
     transport, not arithmetic *)
  | Fli _ | Fmov _ -> Int_alu
  | Fneg _ | Fcmp _ -> Fp_add_sub
  | Cvt_i2f _ | Cvt_f2i _ -> Fp_add_sub
  | Lw _ | Sw _ | Flw _ | Fsw _ -> Load_store
  | Syscall -> Syscall
  | Branch _ | J _ | Jal _ | Jr _ | Jalr _ | Nop | Halt | Mark _ -> Control

let reg r = if r = Reg.zero then None else Some (Loc.Reg r)

let defines : t -> Loc.t option = function
  | Binop (_, rd, _, _) | Binopi (_, rd, _, _) | Li (rd, _)
  | Cvt_f2i (rd, _) | Fcmp (_, rd, _, _) | Lw (rd, _, _) ->
      reg rd
  | Fbinop (_, fd, _, _) | Fli (fd, _) | Fmov (fd, _) | Fneg (fd, _)
  | Cvt_i2f (fd, _) | Flw (fd, _, _) ->
      Some (Loc.Freg fd)
  | Jal _ | Jalr _ -> Some (Loc.Reg Reg.ra)
  | Sw _ | Fsw _ | Branch _ | J _ | Jr _ | Syscall | Nop | Halt | Mark _ ->
      None

let register_uses : t -> Loc.t list =
  let regs rs = List.filter_map reg rs in
  function
  | Binop (_, _, rs, rt) -> regs [ rs; rt ]
  | Binopi (_, _, rs, _) -> regs [ rs ]
  | Li _ | Fli _ | J _ | Jal _ | Nop | Halt | Syscall | Mark _ -> []
  | Fbinop (_, _, fs, ft) -> [ Loc.Freg fs; Loc.Freg ft ]
  | Fmov (_, fs) | Fneg (_, fs) | Cvt_f2i (_, fs) -> [ Loc.Freg fs ]
  | Cvt_i2f (_, rs) -> regs [ rs ]
  | Fcmp (_, _, fs, ft) -> [ Loc.Freg fs; Loc.Freg ft ]
  | Lw (_, base, _) | Flw (_, base, _) -> regs [ base ]
  | Sw (rs, base, _) -> regs [ rs; base ]
  | Fsw (fs, base, _) -> Loc.Freg fs :: regs [ base ]
  | Branch (_, rs, rt, _) -> regs [ rs; rt ]
  | Jr rs | Jalr rs -> regs [ rs ]

let is_control t =
  match t with
  | Branch _ | J _ | Jal _ | Jr _ | Jalr _ | Nop | Halt | Mark _ -> true
  | Binop _ | Binopi _ | Li _ | Fbinop _ | Fli _ | Fmov _ | Fneg _
  | Cvt_i2f _ | Cvt_f2i _ | Fcmp _ | Lw _ | Sw _ | Flw _ | Fsw _ | Syscall
    ->
      false

let binop_name = function
  | Add -> "add" | Sub -> "sub" | Mul -> "mul" | Div -> "div" | Rem -> "rem"
  | And -> "and" | Or -> "or" | Xor -> "xor" | Nor -> "nor"
  | Sll -> "sll" | Srl -> "srl" | Sra -> "sra"
  | Slt -> "slt" | Sle -> "sle" | Seq -> "seq" | Sne -> "sne"

let fbinop_name = function
  | Fadd -> "fadd" | Fsub -> "fsub" | Fmul -> "fmul" | Fdiv -> "fdiv"

let cond_name = function
  | Eq -> "eq" | Ne -> "ne" | Lt -> "lt" | Le -> "le" | Gt -> "gt" | Ge -> "ge"

let mark_name = function Enter -> "enter" | Iter -> "iter" | Exit -> "exit"

let mark_of_string = function
  | "enter" -> Some Enter
  | "iter" -> Some Iter
  | "exit" -> Some Exit
  | _ -> None

let pp_binop ppf op = Format.pp_print_string ppf (binop_name op)
let pp_fbinop ppf op = Format.pp_print_string ppf (fbinop_name op)
let pp_cond ppf c = Format.pp_print_string ppf (cond_name c)

let pp ppf t =
  let r = Reg.name and f = Reg.fname in
  match t with
  | Binop (op, rd, rs, rt) ->
      Format.fprintf ppf "%s %s, %s, %s" (binop_name op) (r rd) (r rs) (r rt)
  | Binopi (op, rd, rs, imm) ->
      Format.fprintf ppf "%si %s, %s, %d" (binop_name op) (r rd) (r rs) imm
  | Li (rd, imm) -> Format.fprintf ppf "li %s, %d" (r rd) imm
  | Fbinop (op, fd, fs, ft) ->
      Format.fprintf ppf "%s %s, %s, %s" (fbinop_name op) (f fd) (f fs) (f ft)
  | Fli (fd, x) -> Format.fprintf ppf "fli %s, %h" (f fd) x
  | Fmov (fd, fs) -> Format.fprintf ppf "fmov %s, %s" (f fd) (f fs)
  | Fneg (fd, fs) -> Format.fprintf ppf "fneg %s, %s" (f fd) (f fs)
  | Cvt_i2f (fd, rs) -> Format.fprintf ppf "cvt.i2f %s, %s" (f fd) (r rs)
  | Cvt_f2i (rd, fs) -> Format.fprintf ppf "cvt.f2i %s, %s" (r rd) (f fs)
  | Fcmp (c, rd, fs, ft) ->
      Format.fprintf ppf "fcmp.%s %s, %s, %s" (cond_name c) (r rd) (f fs)
        (f ft)
  | Lw (rd, base, off) -> Format.fprintf ppf "lw %s, %d(%s)" (r rd) off (r base)
  | Sw (rs, base, off) -> Format.fprintf ppf "sw %s, %d(%s)" (r rs) off (r base)
  | Flw (fd, base, off) ->
      Format.fprintf ppf "flw %s, %d(%s)" (f fd) off (r base)
  | Fsw (fs, base, off) ->
      Format.fprintf ppf "fsw %s, %d(%s)" (f fs) off (r base)
  | Branch (c, rs, rt, tgt) ->
      Format.fprintf ppf "b%s %s, %s, @%d" (cond_name c) (r rs) (r rt) tgt
  | J tgt -> Format.fprintf ppf "j @%d" tgt
  | Jal tgt -> Format.fprintf ppf "jal @%d" tgt
  | Jr rs -> Format.fprintf ppf "jr %s" (r rs)
  | Jalr rs -> Format.fprintf ppf "jalr %s" (r rs)
  | Syscall -> Format.pp_print_string ppf "syscall"
  | Nop -> Format.pp_print_string ppf "nop"
  | Halt -> Format.pp_print_string ppf "halt"
  | Mark (m, loop) -> Format.fprintf ppf "lmark %s, %d" (mark_name m) loop

let to_string t = Format.asprintf "%a" pp t
