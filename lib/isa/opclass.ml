type t =
  | Int_alu
  | Int_multiply
  | Int_divide
  | Fp_add_sub
  | Fp_multiply
  | Fp_divide
  | Load_store
  | Syscall
  | Control

let all =
  [ Int_alu; Int_multiply; Int_divide; Fp_add_sub; Fp_multiply; Fp_divide;
    Load_store; Syscall; Control ]

let latency = function
  | Int_alu -> 1
  | Int_multiply -> 6
  | Int_divide -> 12
  | Fp_add_sub -> 6
  | Fp_multiply -> 6
  | Fp_divide -> 12
  | Load_store -> 1
  | Syscall -> 1
  | Control -> 1

let creates_value = function
  | Control -> false
  | Int_alu | Int_multiply | Int_divide | Fp_add_sub | Fp_multiply
  | Fp_divide | Load_store | Syscall -> true

let count = 9

let to_tag = function
  | Int_alu -> 0
  | Int_multiply -> 1
  | Int_divide -> 2
  | Fp_add_sub -> 3
  | Fp_multiply -> 4
  | Fp_divide -> 5
  | Load_store -> 6
  | Syscall -> 7
  | Control -> 8

let of_tag = function
  | 0 -> Int_alu
  | 1 -> Int_multiply
  | 2 -> Int_divide
  | 3 -> Fp_add_sub
  | 4 -> Fp_multiply
  | 5 -> Fp_divide
  | 6 -> Load_store
  | 7 -> Syscall
  | 8 -> Control
  | k -> invalid_arg (Printf.sprintf "Opclass.of_tag: %d" k)

let syscall_tag = 7
let control_tag = 8

let equal (a : t) (b : t) = a = b

let pp ppf t =
  let s =
    match t with
    | Int_alu -> "Integer ALU"
    | Int_multiply -> "Integer Multiply"
    | Int_divide -> "Integer Division"
    | Fp_add_sub -> "Floating Point Add/Sub"
    | Fp_multiply -> "Floating Point Multiply"
    | Fp_divide -> "Floating Point Division"
    | Load_store -> "Load/Store"
    | Syscall -> "System Calls"
    | Control -> "Control"
  in
  Format.pp_print_string ppf s

let to_string t = Format.asprintf "%a" pp t
