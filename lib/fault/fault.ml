exception Injected of string

type site = { probability : float; budget : int option }

(* Armed state behind the fast-path flag: the site table with one
   independent splitmix64 stream per site, so the decision sequence at
   a site depends only on (seed, site name, ordinal) — never on what
   other sites are doing. *)
type armed_site = {
  spec : site;
  mutable prng : int64;   (* splitmix64 state *)
  mutable fired : int;
}

type state = { table : (string, armed_site) Hashtbl.t }

let on = Atomic.make false
let lock = Mutex.create ()
let state : state option ref = ref None

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

(* splitmix64 (Steele et al.): tiny, seedable, good enough to draw
   independent uniform deviates per site. *)
let sm64_next st =
  let z = Int64.add !st 0x9E3779B97F4A7C15L in
  st := z;
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let uniform st =
  (* top 53 bits -> [0,1) *)
  let bits = Int64.to_int (Int64.shift_right_logical (sm64_next st) 11) in
  float_of_int bits /. 9007199254740992.0

(* FNV-1a over the site name, folded into the seed so each site gets
   its own stream. *)
let site_hash name =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001b3L)
    name;
  !h

let arm_site seed (name, spec) =
  let prng = Int64.logxor (Int64.of_int seed) (site_hash name) in
  (name, { spec; prng; fired = 0 })

let enable ~seed ~sites =
  locked (fun () ->
      let table = Hashtbl.create (List.length sites) in
      List.iter
        (fun entry ->
          let name, armed = arm_site seed entry in
          Hashtbl.replace table name armed)
        sites;
      state := Some { table };
      Atomic.set on true)

let disable () =
  locked (fun () -> Atomic.set on false)

let enabled () = Atomic.get on

let slow_fire name =
  locked (fun () ->
      if not (Atomic.get on) then false
      else
        match !state with
        | None -> false
        | Some { table } -> (
            match Hashtbl.find_opt table name with
            | None -> false
            | Some armed ->
                let exhausted =
                  match armed.spec.budget with
                  | Some b -> armed.fired >= b
                  | None -> false
                in
                if exhausted then false
                else
                  let st = ref armed.prng in
                  let draw = uniform st in
                  armed.prng <- !st;
                  if draw < armed.spec.probability then begin
                    armed.fired <- armed.fired + 1;
                    true
                  end
                  else false))

let fire name = if not (Atomic.get on) then false else slow_fire name

let inject name = if fire name then raise (Injected name)

let injected () =
  locked (fun () ->
      match !state with
      | None -> 0
      | Some { table } ->
          Hashtbl.fold (fun _ armed acc -> acc + armed.fired) table 0)

let injected_at name =
  locked (fun () ->
      match !state with
      | None -> 0
      | Some { table } -> (
          match Hashtbl.find_opt table name with
          | None -> 0
          | Some armed -> armed.fired))

let sites () =
  locked (fun () ->
      if not (Atomic.get on) then []
      else
        match !state with
        | None -> []
        | Some { table } ->
            Hashtbl.fold (fun name _ acc -> name :: acc) table []
            |> List.sort compare)

let of_string spec =
  let entries =
    String.split_on_char ',' spec
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  let parse_entry (seed, sites) entry =
    match String.index_opt entry '=' with
    | None -> Error (Printf.sprintf "missing '=' in %S" entry)
    | Some i -> (
        let key = String.sub entry 0 i in
        let value = String.sub entry (i + 1) (String.length entry - i - 1) in
        if key = "seed" then
          match int_of_string_opt value with
          | Some s -> Ok (s, sites)
          | None -> Error (Printf.sprintf "bad seed %S" value)
        else
          let prob, budget =
            match String.index_opt value ':' with
            | None -> (value, None)
            | Some j ->
                ( String.sub value 0 j,
                  Some (String.sub value (j + 1) (String.length value - j - 1))
                )
          in
          match float_of_string_opt prob with
          | None -> Error (Printf.sprintf "bad probability %S for %s" prob key)
          | Some p when not (p >= 0.0 && p <= 1.0) ->
              Error
                (Printf.sprintf "probability %g for %s outside [0,1]" p key)
          | Some p -> (
              match budget with
              | None ->
                  Ok (seed, (key, { probability = p; budget = None }) :: sites)
              | Some b -> (
                  match int_of_string_opt b with
                  | Some n when n >= 0 ->
                      Ok
                        ( seed,
                          (key, { probability = p; budget = Some n }) :: sites
                        )
                  | _ -> Error (Printf.sprintf "bad budget %S for %s" b key))))
  in
  let rec go acc = function
    | [] ->
        let seed, sites = acc in
        Ok (seed, List.rev sites)
    | e :: rest -> (
        match parse_entry acc e with
        | Ok acc -> go acc rest
        | Error _ as err -> err)
  in
  go (0, []) entries

let configure_from_env () =
  match Sys.getenv_opt "DDG_FAULTS" with
  | None | Some "" -> Ok false
  | Some spec -> (
      match of_string spec with
      | Ok (seed, sites) ->
          enable ~seed ~sites;
          Ok true
      | Error msg -> Error (Printf.sprintf "DDG_FAULTS: %s" msg))
