(** Deterministic, seed-driven fault injection.

    A single global injector holds a table of named sites. Code under
    test asks [fire "store.put.torn"] at each injection point; the
    answer is drawn from a per-site deterministic PRNG stream derived
    from the global seed and the site name, so a given seed replays the
    exact same fault schedule regardless of how many unrelated sites
    fire in between.

    The injector is off by default and the disabled path is a single
    relaxed [Atomic.get] — no lock, no allocation — so production code
    can leave the probes in place at zero cost. *)

(** Raised by {!inject} at sites whose natural failure is an exception
    with no better type (e.g. a simulated worker-domain crash). Sites
    that model a system failure raise the real thing ([Unix.Unix_error],
    [Sys_error]) at the call site instead. *)
exception Injected of string

type site = {
  probability : float;  (** chance in \[0,1\] that the site fires *)
  budget : int option;  (** max number of firings, [None] = unlimited *)
}

(** [enable ~seed ~sites] arms the injector with the given site table,
    replacing any previous configuration and zeroing all counters.
    Unlisted sites never fire. *)
val enable : seed:int -> sites:(string * site) list -> unit

(** Disarm the injector and drop its site table. Counters from the last
    armed run remain readable until the next {!enable}. *)
val disable : unit -> unit

val enabled : unit -> bool

(** [fire name] decides whether the fault at site [name] triggers now.
    Always [false] when disabled or when [name] is not in the armed
    table. Deterministic per (seed, site name, call ordinal). *)
val fire : string -> bool

(** [inject name] raises [Injected name] when [fire name] is true,
    otherwise returns unit. *)
val inject : string -> unit

(** Total faults injected since the last {!enable}. *)
val injected : unit -> int

(** Faults injected at one site since the last {!enable}. *)
val injected_at : string -> int

(** Names of the currently armed sites (empty when disabled). *)
val sites : unit -> string list

(** Parse a spec like ["seed=42,store.put.torn=0.1:2,proto.read.eintr=0.05"]
    — a [seed=N] entry plus [site=probability] or
    [site=probability:budget] entries, comma separated. Returns the
    seed (default 0 if absent) and the site table, or [Error msg]. *)
val of_string : string -> (int * (string * site) list, string) result

(** Arm the injector from the [DDG_FAULTS] environment variable if it
    is set and non-empty. Returns [Ok true] if armed, [Ok false] if the
    variable was absent/empty, [Error msg] on a malformed spec. *)
val configure_from_env : unit -> (bool, string) result
