module Loc = Ddg_isa.Loc
module Insn = Ddg_isa.Insn
module Trace = Ddg_sim.Trace
module Config = Ddg_paragraph.Config

type classification =
  | Doall
  | Reduction of { distance : int }
  | Carried of { distance : int }

type carried_dep = { location : Loc.t; distance : int; occurrences : int }

type loop_report = {
  id : int;
  func : string;
  line : int;
  kind : string;
  classification : classification;
  entries : int;
  iterations : int;
  ops : int;
  cp_cycles : int;
  carried : carried_dep list;
}

type t = { loops : loop_report list; total_ops : int; total_cp : int }

let avg_iterations r =
  float_of_int r.iterations /. float_of_int (max 1 r.entries)

let speedup_estimate r =
  let iters = avg_iterations r in
  let s =
    match r.classification with
    | Doall -> iters
    | Reduction _ -> iters /. 2.
    | Carried { distance } -> min iters (float_of_int distance)
  in
  max 1. s

let benefit r =
  let s = speedup_estimate r in
  float_of_int r.ops *. (1. -. (1. /. s))

let classification_name = function
  | Doall -> "DOALL"
  | Reduction { distance } -> Printf.sprintf "reduction (dist %d)" distance
  | Carried { distance } -> Printf.sprintf "carried (dist %d)" distance

(* --- the forward pass ---------------------------------------------------

   One loop-context frame per active loop activation. Frames form the
   current nesting chain through [parent]; [on_stack] distinguishes the
   live chain from frames captured in writer records whose activation
   has since exited. [starts] records the trace position at which each
   iteration of this activation began (one int per executed [iter]
   mark), so a writer event's iteration number is a binary search. *)

type frame = {
  loop : int;
  mutable iter : int;        (* current iteration; -1 in the preheader *)
  mutable starts : int array;
  mutable nstarts : int;
  parent : frame option;
  mutable on_stack : bool;
  enter_pos : int;
  enter_cp : int;
}

let push_start f pos =
  if f.nstarts = Array.length f.starts then begin
    let cap = max 8 (2 * f.nstarts) in
    let a = Array.make cap 0 in
    Array.blit f.starts 0 a 0 f.nstarts;
    f.starts <- a
  end;
  f.starts.(f.nstarts) <- pos;
  f.nstarts <- f.nstarts + 1

(* Iteration of activation [f] that was current at trace position
   [ev]: the last iteration whose start is <= [ev], -1 when [ev]
   precedes the first iteration (the preheader). *)
let iter_at f ev =
  if f.nstarts = 0 || ev < f.starts.(0) then -1
  else begin
    let lo = ref 0 and hi = ref (f.nstarts - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi + 1) / 2 in
      if f.starts.(mid) <= ev then lo := mid else hi := mid - 1
    done;
    !lo
  end

(* Carried-dependence observations for one (loop, location) pair.
   [all_selfonly] / [all_mem] stay true only while every observed
   writer had the corresponding property — used by the induction
   discount and the memory-reduction rule. *)
type cdep = {
  mutable dist : int;
  mutable count : int;
  mutable all_selfonly : bool;
  mutable all_mem : bool;
}

type agg = {
  mutable entries : int;
  mutable iters : int;
  mutable a_ops : int;
  mutable a_cp : int;
  carried : (int, cdep) Hashtbl.t;  (* keyed by dense location id *)
}

let new_agg () =
  { entries = 0; iters = 0; a_ops = 0; a_cp = 0; carried = Hashtbl.create 8 }

let analyze ?(config = Config.default) trace =
  let cols = Trace.columns trace in
  let n = cols.n in
  let nlocs = max 1 (Trace.num_locs trace) in
  let loop_table = Trace.loops trace in
  let nloops = Array.length loop_table in
  let lat = Config.latency_table config in
  let sc = Trace.storage_classes trace in
  let is_mem id = Bytes.get sc id <> '\000' in
  (* per-location writer records: event index, frame, and two bits —
     "selfonly" (the value is a function of nothing but this location's
     previous value, e.g. a counter bump or a constant reset) and
     "through memory" (the record was restored by a load, so a carried
     dependence on this register is really a dependence through the
     memory cell it was loaded from). *)
  let w_ev = Array.make nlocs (-1) in
  let w_frame : frame option array = Array.make nlocs None in
  let w_self = Bytes.make nlocs '\001' in
  let w_mem = Bytes.make nlocs '\000' in
  let level = Array.make nlocs 0 in
  let aggs = Array.init nloops (fun _ -> new_agg ()) in
  let cur = ref None in
  let cp = ref 0 in
  let close_frame f pos =
    f.on_stack <- false;
    cur := f.parent;
    if f.loop < nloops then begin
      let a = aggs.(f.loop) in
      a.a_ops <- a.a_ops + (pos - f.enter_pos);
      a.a_cp <- a.a_cp + (!cp - f.enter_cp)
    end
  in
  let rec close_until l pos =
    match !cur with
    | None -> ()
    | Some f ->
        close_frame f pos;
        if f.loop <> l then close_until l pos
  in
  let apply_mark (m : Trace.mark) =
    match m.kind with
    | Insn.Enter ->
        cur :=
          Some
            {
              loop = m.loop;
              iter = -1;
              starts = [||];
              nstarts = 0;
              parent = !cur;
              on_stack = true;
              enter_pos = m.pos;
              enter_cp = !cp;
            };
        if m.loop < nloops then begin
          let a = aggs.(m.loop) in
          a.entries <- a.entries + 1
        end
    | Insn.Iter -> (
        match !cur with
        | Some f when f.loop = m.loop ->
            f.iter <- f.iter + 1;
            push_start f m.pos;
            if m.loop < nloops then begin
              let a = aggs.(m.loop) in
              a.iters <- a.iters + 1
            end
        | _ -> () (* stray iter: tolerate malformed mark streams *))
    | Insn.Exit -> close_until m.loop m.pos
  in
  let nmarks = Trace.num_marks trace in
  let mi = ref 0 in
  let rec anchor f =
    if f.on_stack then Some f
    else match f.parent with Some p -> anchor p | None -> None
  in
  let record_dep i s =
    ignore i;
    let ev = w_ev.(s) in
    if ev >= 0 then begin
      match w_frame.(s) with
      | None -> ()
      | Some wf -> (
          match anchor wf with
          | None -> ()
          | Some f ->
              (* fast path: the writer ran during the current iteration
                 of its deepest still-active loop — not carried *)
              if f.iter >= 0 && ev < f.starts.(f.iter) then begin
                let w_iter = iter_at f ev in
                if w_iter >= 0 && f.loop < nloops then begin
                  let d = f.iter - w_iter in
                  if d > 0 then begin
                    let a = aggs.(f.loop) in
                    let c =
                      match Hashtbl.find_opt a.carried s with
                      | Some c -> c
                      | None ->
                          let c =
                            {
                              dist = d;
                              count = 0;
                              all_selfonly = true;
                              all_mem = true;
                            }
                          in
                          Hashtbl.add a.carried s c;
                          c
                    in
                    c.dist <- min c.dist d;
                    c.count <- c.count + 1;
                    if Bytes.get w_self s = '\000' then
                      c.all_selfonly <- false;
                    if not (is_mem s || Bytes.get w_mem s = '\001') then
                      c.all_mem <- false
                  end
                end
              end)
    end
  in
  let control_tag = Ddg_isa.Opclass.control_tag in
  let ls_tag = Ddg_isa.Opclass.to_tag Ddg_isa.Opclass.Load_store in
  for i = 0 to n - 1 do
    while !mi < nmarks && (Trace.get_mark trace !mi).pos <= i do
      apply_mark (Trace.get_mark trace !mi);
      incr mi
    done;
    let flags = Char.code (Bigarray.Array1.get cols.flags i) in
    let cls = flags land Trace.flags_class_mask in
    let s0 = cols.src0.{i} and s1 = cols.src1.{i} and s2 = cols.src2.{i} in
    if s0 >= 0 then record_dep i s0;
    if s1 >= 0 then record_dep i s1;
    if s2 >= 0 then record_dep i s2;
    let extras =
      if flags land Trace.flags_extra <> 0 then Trace.extra_srcs trace i
      else [||]
    in
    Array.iter (fun s -> if s >= 0 then record_dep i s) extras;
    if flags land Trace.flags_has_dest <> 0 && cls <> control_tag then begin
      let d = cols.dsts.{i} in
      (* dataflow level: independent of store/load transparency, so the
         critical path counts the memory operations it flows through *)
      let maxl = ref 0 in
      let see s = if s >= 0 && level.(s) > !maxl then maxl := level.(s) in
      see s0;
      see s1;
      see s2;
      Array.iter see extras;
      let lvl = !maxl + lat.(cls) in
      if cls = ls_tag && is_mem d then begin
        (* store: a transparent value copy. The cell's writer record
           becomes the record of the event that computed the stored
           value (source 0), so later readers depend on the producer,
           not on the copy — spills can never look loop-carried. *)
        let nsrcs =
          (if s0 >= 0 then 1 else 0)
          + (if s1 >= 0 then 1 else 0)
          + if s2 >= 0 then 1 else 0
        in
        if nsrcs >= 2 && w_ev.(s0) >= 0 then begin
          w_ev.(d) <- w_ev.(s0);
          w_frame.(d) <- w_frame.(s0);
          Bytes.set w_self d (Bytes.get w_self s0)
        end
        else begin
          (* value register untracked (or elided: storing r0) — the
             store itself is the best producer we can name *)
          w_ev.(d) <- i;
          w_frame.(d) <- !cur;
          Bytes.set w_self d '\000'
        end
      end
      else if cls = ls_tag then begin
        (* load: restore the cell's producer record into the register;
           mark it "through memory" so the memory-reduction rule can
           recognise read-modify-write accumulators it feeds. *)
        let m = ref (-1) in
        let pick s = if s >= 0 && is_mem s then m := s in
        pick s0;
        pick s1;
        pick s2;
        Array.iter pick extras;
        if !m >= 0 && w_ev.(!m) >= 0 then begin
          w_ev.(d) <- w_ev.(!m);
          w_frame.(d) <- w_frame.(!m);
          Bytes.set w_self d (Bytes.get w_self !m);
          Bytes.set w_mem d '\001'
        end
        else begin
          w_ev.(d) <- i;
          w_frame.(d) <- !cur;
          Bytes.set w_self d '\000';
          Bytes.set w_mem d '\000'
        end
      end
      else begin
        w_ev.(d) <- i;
        w_frame.(d) <- !cur;
        let selfonly =
          (s0 < 0 || s0 = d)
          && (s1 < 0 || s1 = d)
          && (s2 < 0 || s2 = d)
          && Array.for_all (fun s -> s < 0 || s = d) extras
        in
        Bytes.set w_self d (if selfonly then '\001' else '\000');
        Bytes.set w_mem d '\000'
      end;
      level.(d) <- lvl;
      if lvl > !cp then cp := lvl
    end
  done;
  while !mi < nmarks do
    apply_mark (Trace.get_mark trace !mi);
    incr mi
  done;
  (* trace ended inside loops (fault, instruction limit): close what
     remains so their work is still accounted *)
  let rec drain () =
    match !cur with
    | None -> ()
    | Some f ->
        close_frame f n;
        drain ()
  in
  drain ();
  (* classification *)
  let report id =
    let a = aggs.(id) in
    if a.entries = 0 then None
    else begin
      let desc = loop_table.(id) in
      let ids locs = List.filter_map (Trace.find_id trace) locs in
      let ind_ids = ids desc.Ddg_isa.Loop.inductions in
      let red_ids = ids desc.Ddg_isa.Loop.reductions in
      let surviving = ref [] in
      let red_dist = ref max_int and car_dist = ref max_int in
      Hashtbl.iter
        (fun s (c : cdep) ->
          let discount = List.mem s ind_ids || c.all_selfonly in
          if not discount then begin
            surviving :=
              {
                location = Trace.loc_of_id trace s;
                distance = c.dist;
                occurrences = c.count;
              }
              :: !surviving;
            let reduction =
              List.mem s red_ids
              || (desc.Ddg_isa.Loop.mem_reduction && c.all_mem)
            in
            if reduction then red_dist := min !red_dist c.dist
            else car_dist := min !car_dist c.dist
          end)
        a.carried;
      let classification =
        if !car_dist < max_int then Carried { distance = !car_dist }
        else if !red_dist < max_int then Reduction { distance = !red_dist }
        else Doall
      in
      let carried =
        List.sort
          (fun a b ->
            match compare a.distance b.distance with
            | 0 -> (
                match compare b.occurrences a.occurrences with
                | 0 -> Loc.compare a.location b.location
                | c -> c)
            | c -> c)
          !surviving
      in
      let carried =
        List.filteri (fun i _ -> i < 4) carried
      in
      Some
        {
          id;
          func = desc.Ddg_isa.Loop.func;
          line = desc.Ddg_isa.Loop.line;
          kind = desc.Ddg_isa.Loop.kind;
          classification;
          entries = a.entries;
          iterations = a.iters;
          ops = a.a_ops;
          cp_cycles = a.a_cp;
          carried;
        }
    end
  in
  let loops =
    List.init nloops report |> List.filter_map (fun r -> r)
    |> List.sort (fun a b ->
           match compare (benefit b) (benefit a) with
           | 0 -> (
               match compare b.ops a.ops with 0 -> compare a.id b.id | c -> c)
           | c -> c)
  in
  { loops; total_ops = n; total_cp = !cp }

let pp ppf t =
  Format.fprintf ppf "@[<v>%d loops, %d ops, cp %d@," (List.length t.loops)
    t.total_ops t.total_cp;
  List.iter
    (fun r ->
      Format.fprintf ppf "loop %d %s:%d [%s] %s iters=%d ops=%d cp=%d@," r.id
        r.func r.line r.kind
        (classification_name r.classification)
        r.iterations r.ops r.cp_cycles)
    t.loops;
  Format.fprintf ppf "@]"
