exception Corrupt of string

let corrupt fmt = Format.kasprintf (fun msg -> raise (Corrupt msg)) fmt

let magic = "DDGADV01"
let version = 1
let terminator = 0xFE

(* Abstract byte sinks/sources so the same code serves the artifact
   store (channels) and the daemon protocol (strings) — the
   {!Ddg_paragraph.Stats_codec} pattern. *)

type sink = { put_byte : int -> unit; put_string : string -> unit }

type source = {
  get_byte : unit -> int;    (* raises End_of_file when exhausted *)
  get_exact : int -> string; (* n bytes; raises End_of_file when short *)
}

let sink_of_channel oc =
  { put_byte = output_byte oc; put_string = output_string oc }

let sink_of_buffer b =
  {
    put_byte = (fun v -> Buffer.add_char b (Char.chr (v land 0xFF)));
    put_string = Buffer.add_string b;
  }

let source_of_channel ic =
  {
    get_byte = (fun () -> input_byte ic);
    get_exact = (fun n -> really_input_string ic n);
  }

let source_of_string s =
  let pos = ref 0 in
  let get_byte () =
    if !pos >= String.length s then raise End_of_file
    else begin
      let c = Char.code s.[!pos] in
      incr pos;
      c
    end
  in
  let get_exact n =
    if n < 0 || !pos + n > String.length s then raise End_of_file
    else begin
      let sub = String.sub s !pos n in
      pos := !pos + n;
      sub
    end
  in
  ({ get_byte; get_exact }, fun () -> !pos)

let put_varint k v =
  if v < 0 then invalid_arg "Advise_codec: negative varint";
  let v = ref v in
  let continue = ref true in
  while !continue do
    let byte = !v land 0x7F in
    v := !v lsr 7;
    if !v = 0 then begin
      k.put_byte byte;
      continue := false
    end
    else k.put_byte (byte lor 0x80)
  done

let get_varint src =
  let rec go shift acc =
    if shift > 56 then corrupt "varint too long";
    let byte =
      try src.get_byte () with End_of_file -> corrupt "truncated varint"
    in
    let acc = acc lor ((byte land 0x7F) lsl shift) in
    if byte land 0x80 = 0 then acc else go (shift + 7) acc
  in
  go 0 0

let put_str k s =
  put_varint k (String.length s);
  k.put_string s

let get_str ?(max = 4096) src =
  let n = get_varint src in
  if n > max then corrupt "implausible string length %d" n;
  try src.get_exact n with End_of_file -> corrupt "truncated string"

(* --- the report ----------------------------------------------------------- *)

let class_tag : Advise.classification -> int = function
  | Advise.Doall -> 0
  | Advise.Reduction _ -> 1
  | Advise.Carried _ -> 2

let put_report k (r : Advise.loop_report) =
  put_varint k r.id;
  put_str k r.func;
  put_varint k r.line;
  put_str k r.kind;
  k.put_byte (class_tag r.classification);
  (match r.classification with
  | Advise.Doall -> ()
  | Advise.Reduction { distance } | Advise.Carried { distance } ->
      put_varint k distance);
  put_varint k r.entries;
  put_varint k r.iterations;
  put_varint k r.ops;
  put_varint k r.cp_cycles;
  put_varint k (List.length r.carried);
  List.iter
    (fun (c : Advise.carried_dep) ->
      put_varint k (Ddg_isa.Loc.to_code c.location);
      put_varint k c.distance;
      put_varint k c.occurrences)
    r.carried

let get_report src : Advise.loop_report =
  let id = get_varint src in
  let func = get_str src in
  let line = get_varint src in
  let kind = get_str ~max:16 src in
  let classification =
    match try src.get_byte () with End_of_file -> corrupt "truncated class" with
    | 0 -> Advise.Doall
    | 1 -> Advise.Reduction { distance = get_varint src }
    | 2 -> Advise.Carried { distance = get_varint src }
    | t -> corrupt "unknown classification tag %d" t
  in
  let entries = get_varint src in
  let iterations = get_varint src in
  let ops = get_varint src in
  let cp_cycles = get_varint src in
  let ncarried = get_varint src in
  if ncarried > 64 then corrupt "implausible carried-dep count %d" ncarried;
  let carried =
    List.init ncarried (fun _ ->
        let location =
          let code = get_varint src in
          try Ddg_isa.Loc.of_code code
          with Invalid_argument _ -> corrupt "bad location code %d" code
        in
        let distance = get_varint src in
        let occurrences = get_varint src in
        { Advise.location; distance; occurrences })
  in
  {
    Advise.id;
    func;
    line;
    kind;
    classification;
    entries;
    iterations;
    ops;
    cp_cycles;
    carried;
  }

let put k (t : Advise.t) =
  k.put_string magic;
  put_varint k version;
  put_varint k t.total_ops;
  put_varint k t.total_cp;
  put_varint k (List.length t.loops);
  List.iter (put_report k) t.loops;
  k.put_byte terminator

let get src : Advise.t =
  let m = try src.get_exact 8 with End_of_file -> corrupt "truncated magic" in
  if m <> magic then corrupt "bad magic";
  let v = get_varint src in
  if v <> version then corrupt "version %d, expected %d" v version;
  let total_ops = get_varint src in
  let total_cp = get_varint src in
  let nloops = get_varint src in
  if nloops > 1_000_000 then corrupt "implausible loop count %d" nloops;
  let loops = List.init nloops (fun _ -> get_report src) in
  (match src.get_byte () with
  | b when b = terminator -> ()
  | b -> corrupt "bad terminator byte %d" b
  | exception End_of_file -> corrupt "truncated terminator");
  { Advise.loops; total_ops; total_cp }

let write oc t = put (sink_of_channel oc) t

let read ic =
  try get (source_of_channel ic) with End_of_file -> corrupt "truncated input"

let to_string t =
  let b = Buffer.create 256 in
  put (sink_of_buffer b) t;
  Buffer.contents b

let of_string s =
  let src, tell = source_of_string s in
  let t = get src in
  if tell () <> String.length s then corrupt "trailing bytes";
  t
