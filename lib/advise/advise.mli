(** The parallelization advisor: loop-level dependence classification.

    Consumes a loop-attributed trace (one produced with compiler marks,
    {!Ddg_minic.Codegen.emit} [~marks:true]) and classifies every
    executed source loop by the cross-iteration flow dependences
    actually observed:

    - {b DOALL}: no carried dependence survives discounting — every
      iteration could run in parallel.
    - {b Reduction}: every surviving carried dependence is a
      commutative accumulation (statically hinted by the compiler's
      [.loop] descriptor: a register accumulator list or the
      memory-reduction flag), so the loop parallelises with a
      reduction tree.
    - {b Carried}: a genuine loop-carried dependence remains; the
      minimum observed iteration distance bounds the overlap (distance
      [d] lets [d] iterations run in flight).

    Discounting mirrors what a parallelising compiler would do:
    induction registers named by the loop descriptor are ignored, as is
    any location only ever written as a function of itself (loop
    counters, the stack pointer). Stores are treated as transparent
    value copies — a dependence through memory is attributed to the
    event that {e computed} the stored value, so callee-save and
    expression spills never fabricate carried dependences.

    Loops are ranked by estimated benefit: the dynamic operations the
    loop covers, scaled by how much of that work the classification
    says could overlap. *)

type classification =
  | Doall
  | Reduction of { distance : int }
      (** carried, but every surviving dependence is a hinted
          accumulator; [distance] is the minimum observed *)
  | Carried of { distance : int }
      (** [distance] is the minimum observed iteration distance *)

type carried_dep = {
  location : Ddg_isa.Loc.t;  (** where the dependence was observed *)
  distance : int;            (** minimum iteration distance observed *)
  occurrences : int;         (** dynamic dependence-edge count *)
}

type loop_report = {
  id : int;              (** loop id ({!Ddg_isa.Loop.t} table index) *)
  func : string;
  line : int;
  kind : string;         (** "for" | "while" | "do" *)
  classification : classification;
  entries : int;         (** dynamic activations *)
  iterations : int;      (** dynamic iterations, all activations *)
  ops : int;             (** events executed while active (inclusive) *)
  cp_cycles : int;       (** critical-path growth while active
                             (latency-weighted, inclusive) *)
  carried : carried_dep list;
      (** surviving carried dependences (inductions discounted),
          tightest distance first; capped at four *)
}

val avg_iterations : loop_report -> float
(** Iterations per activation. *)

val speedup_estimate : loop_report -> float
(** Idealised overlap factor: DOALL loops scale with their iteration
    count, reductions with half of it (tree latency), carried loops
    with the minimum dependence distance. Always at least 1. *)

val benefit : loop_report -> float
(** Ranking key: [ops * (1 - 1 / speedup_estimate)] — the dynamic work
    the classification says could be overlapped. *)

type t = {
  loops : loop_report list;
      (** executed loops, ranked by {!benefit} descending (ties: more
          ops first, then lower id) *)
  total_ops : int;   (** trace length *)
  total_cp : int;    (** final dataflow critical path, latency-weighted *)
}

val analyze : ?config:Ddg_paragraph.Config.t -> Ddg_sim.Trace.t -> t
(** Single forward pass over the trace. [config] supplies the latency
    table for critical-path weighting (default
    {!Ddg_paragraph.Config.default}). A trace without marks yields
    [{ loops = []; _ }]. *)

val classification_name : classification -> string
(** ["DOALL"], ["reduction (dist d)"], ["carried (dist d)"] — the
    stable strings the CLI table and the smoke tests grep for. *)

val pp : Format.formatter -> t -> unit
(** Debug rendering (one line per loop). *)
