(** Binary serialisation of {!Advise.t}.

    The advise payload format of the daemon protocol and the artifact
    store: a self-delimiting binary stream behind a magic/version
    header — varint-encoded counters, locations as {!Ddg_isa.Loc.to_code}
    codes — mirroring {!Ddg_paragraph.Stats_codec}.

    The encoding is canonical: serialising the result of {!of_string}
    yields the same bytes, so byte equality of encodings is a sound
    (and the cheapest) test for report equality — the golden e2e test
    compares in-process, served and router-routed runs this way. *)

exception Corrupt of string
(** Raised on malformed or version-mismatched input. *)

val version : int
(** Version of the advisor semantics plus this encoding. Bump whenever
    {!Advise.analyze} changes what any field means or this format
    changes; cached artifacts keyed under other versions are then
    recomputed rather than misread. *)

val write : out_channel -> Advise.t -> unit

val read : in_channel -> Advise.t
(** @raise Corrupt *)

val to_string : Advise.t -> string
(** The same canonical encoding as {!write}, in memory. *)

val of_string : string -> Advise.t
(** Inverse of {!to_string}; the whole string must be consumed.
    @raise Corrupt *)
