(* The paragraph command-line tool.

   Subcommands:
   - analyze:   trace a Mini-C file, an assembly file or a named workload
                and run the DDG analysis under any switch combination
   - profile:   print the parallelism profile (chart or CSV)
   - ddg:       emit the explicit DDG of a small program as Graphviz DOT
   - run:       just execute a program on the simulator
   - workloads: list the SPEC'89-analog workloads
   - table3 / table4 / fig7 / fig8: regenerate one paper result *)

open Cmdliner
open Ddg_paragraph

(* --- program / trace loading ------------------------------------------- *)

type source = Workload_name of string | Minic_file of string | Asm_file of string

(* One-line error + nonzero exit: missing or unreadable input files and
   corrupt traces are user errors, not reasons for a backtrace. *)
let die fmt =
  Printf.ksprintf
    (fun msg ->
      prerr_endline ("paragraph: " ^ msg);
      exit 2)
    fmt

let read_source path =
  try
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with Sys_error msg -> die "%s" msg

let load_program = function
  | Workload_name name -> (
      match Ddg_workloads.Registry.find name with
      | Some w -> Ddg_workloads.Workload.program w Ddg_workloads.Workload.Default
      | None -> failwith (Printf.sprintf "unknown workload %S" name))
  | Minic_file path -> (
      let source = read_source path in
      try Ddg_minic.Driver.compile source
      with Ddg_minic.Driver.Error { line; msg } ->
        failwith (Printf.sprintf "%s:%d: %s" path line msg))
  | Asm_file path -> (
      let source = read_source path in
      try Ddg_asm.Assembler.assemble_string source
      with
      | Ddg_asm.Parser.Error { lineno; msg }
      | Ddg_asm.Assembler.Error { lineno; msg } ->
          failwith (Printf.sprintf "%s:%d: %s" path lineno msg))

let read_trace_file path =
  try Ddg_sim.Trace_io.read_file path with
  | Ddg_sim.Trace_io.Corrupt msg -> die "%s: corrupt trace file: %s" path msg
  | Sys_error msg -> die "%s" msg

let classify_input input =
  if Filename.check_suffix input ".mc" || Filename.check_suffix input ".c"
  then Minic_file input
  else if Filename.check_suffix input ".s" || Filename.check_suffix input ".asm"
  then Asm_file input
  else Workload_name input

(* returns [None] for the simulation result and program when the input is
   a saved trace file (no simulation happens) *)
let trace_and_program_of_input input ~max_instructions =
  if Filename.check_suffix input ".trace" then
    (None, None, read_trace_file input)
  else begin
    let program = load_program (classify_input input) in
    let result, trace =
      Ddg_sim.Machine.run_to_trace ~max_instructions program
    in
    (match result.stop with
    | Ddg_sim.Machine.Halted | Ddg_sim.Machine.Instruction_limit -> ()
    | Ddg_sim.Machine.Fault msg -> failwith ("machine fault: " ^ msg));
    (Some result, Some program, trace)
  end

let trace_of_input input ~max_instructions =
  let result, _, trace = trace_and_program_of_input input ~max_instructions in
  (result, trace)

(* --- common options ------------------------------------------------------ *)

let input_arg =
  let doc =
    "Program to analyze: a workload name (see $(b,workloads)), a Mini-C \
     file (.mc/.c) or an assembly file (.s/.asm)."
  in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"PROGRAM" ~doc)

let max_instructions_arg =
  let doc = "Maximum instructions to trace." in
  Arg.(value & opt int 100_000_000 & info [ "max-instructions" ] ~doc)

let optimistic_arg =
  let doc =
    "Assume system calls modify nothing (optimistic) instead of placing a \
     firewall (conservative)."
  in
  Arg.(value & flag & info [ "optimistic" ] ~doc)

let renaming_arg =
  let doc = "Renaming: one of none, regs, regs-stack, all." in
  let kind =
    Arg.enum
      [ ("none", Config.rename_none);
        ("regs", Config.rename_registers_only);
        ("regs-stack", Config.rename_registers_stack);
        ("all", Config.rename_all) ]
  in
  Arg.(value & opt kind Config.rename_all & info [ "renaming" ] ~doc)

let window_arg =
  let doc = "Instruction window size (omit for an unbounded window)." in
  Arg.(value & opt (some int) None & info [ "window"; "w" ] ~doc)

let fu_arg =
  let doc = "Total functional-unit limit (omit for unlimited)." in
  Arg.(value & opt (some int) None & info [ "fu" ] ~doc)

let branch_arg =
  let doc = "Branch handling: perfect, taken, not-taken, or 2bit." in
  let kind =
    Arg.enum
      [ ("perfect", Config.Perfect);
        ("taken", Config.Predict_taken);
        ("not-taken", Config.Predict_not_taken);
        ("2bit", Config.Two_bit 12) ]
  in
  Arg.(value & opt kind Config.Perfect & info [ "branch" ] ~doc)

let config_term =
  let make optimistic renaming window fu branch =
    {
      Config.default with
      syscall_stall = not optimistic;
      renaming;
      window;
      fu = { Config.unlimited_fu with total = fu };
      branch;
    }
  in
  Term.(
    const make $ optimistic_arg $ renaming_arg $ window_arg $ fu_arg
    $ branch_arg)

(* --- analyze ------------------------------------------------------------- *)

let stats_to_json input config (stats : Analyzer.stats) =
  let open Ddg_report.Json in
  Obj
    [ ("program", String input);
      ("switches", String (Config.describe config));
      ("events", Int stats.events);
      ("placed_ops", Int stats.placed_ops);
      ("syscalls", Int stats.syscalls);
      ("critical_path", Int stats.critical_path);
      ("available_parallelism", Float stats.available_parallelism);
      ("live_locations", Int stats.live_locations);
      ("mispredicts", Int stats.mispredicts);
      ( "lifetimes",
        Obj
          [ ("count", Int (Dist.count stats.lifetimes));
            ("mean", Float (Dist.mean stats.lifetimes));
            ( "max",
              if Dist.count stats.lifetimes = 0 then Null
              else Int (Dist.max_value stats.lifetimes) ) ] );
      ( "sharing",
        Obj
          [ ("count", Int (Dist.count stats.sharing));
            ("mean", Float (Dist.mean stats.sharing));
            ( "max",
              if Dist.count stats.sharing = 0 then Null
              else Int (Dist.max_value stats.sharing) ) ] );
      ( "storage",
        Obj
          [ ( "mean_live",
              Float (Profile.average_parallelism stats.storage_profile) );
            ( "peak_live",
              Float (Profile.max_ops_per_level stats.storage_profile) ) ] ) ]

let analyze_cmd =
  let run input max_instructions config json =
    let result, trace = trace_of_input input ~max_instructions in
    let stats = Analyzer.analyze config trace in
    if json then
      print_endline
        (Ddg_report.Json.to_string (stats_to_json input config stats))
    else begin
      Format.printf "program: %s@." input;
      Format.printf "switches: %s@." (Config.describe config);
      (match result with
      | Some r ->
          Format.printf
            "simulation: %d instructions, %d syscalls, output %d bytes@."
            r.instructions r.syscalls
            (String.length r.output)
      | None ->
          Format.printf "trace file: %d events@."
            (Ddg_sim.Trace.length trace));
      Format.printf "%a@." Analyzer.pp_stats stats
    end
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit machine-readable JSON.")
  in
  let doc = "Run the Paragraph DDG analysis on a program or workload." in
  Cmd.v
    (Cmd.info "analyze" ~doc)
    Term.(const run $ input_arg $ max_instructions_arg $ config_term $ json)

(* --- profile -------------------------------------------------------------- *)

let profile_cmd =
  let run input max_instructions config csv storage =
    let _, trace = trace_of_input input ~max_instructions in
    let stats = Analyzer.analyze config trace in
    let profile = if storage then stats.storage_profile else stats.profile in
    let series = Profile.series profile in
    if csv then
      print_string
        (Ddg_report.Csv.to_string
           ~header:[ "level_lo"; "level_hi"; "ops_per_level" ]
           (List.map
              (fun (lo, hi, avg) ->
                [ string_of_int lo; string_of_int hi;
                  Printf.sprintf "%.4f" avg ])
              series))
    else begin
      Format.printf "%s: %d levels, %s mass %d, average %.2f per level@."
        input (Profile.levels profile)
        (if storage then "liveness" else "ops")
        (Profile.total_ops profile)
        (Profile.average_parallelism profile);
      print_string
        (Ddg_report.Chart.column_chart
           ~y_label:
             (if storage then "live values" else "operations available")
           ~log_y:true
           (List.map
              (fun (lo, hi, avg) -> (float_of_int (lo + hi) /. 2.0, avg))
              series))
    end
  in
  let csv =
    Arg.(value & flag & info [ "csv" ] ~doc:"Emit CSV instead of a chart.")
  in
  let storage =
    Arg.(
      value & flag
      & info [ "storage" ]
          ~doc:
            "Show the storage (live values per level) profile instead of              the parallelism profile.")
  in
  let doc =
    "Print the parallelism profile (or, with $(b,--storage), the      memory-requirement profile) of a program or workload."
  in
  Cmd.v
    (Cmd.info "profile" ~doc)
    Term.(
      const run $ input_arg $ max_instructions_arg $ config_term $ csv
      $ storage)

(* --- ddg ------------------------------------------------------------------- *)

let ddg_cmd =
  let run input max_instructions config =
    let _, trace = trace_of_input input ~max_instructions in
    if Ddg_sim.Trace.length trace > 200_000 then
      failwith
        "trace too large for explicit DDG construction; use --max-instructions";
    let ddg = Ddg.build config trace in
    print_string (Ddg.to_dot ddg)
  in
  let doc =
    "Build the explicit DDG of a (small) program and print Graphviz DOT."
  in
  Cmd.v
    (Cmd.info "ddg" ~doc)
    Term.(
      const run $ input_arg
      $ Arg.(value & opt int 2_000 & info [ "max-instructions" ] ~doc:"Cap.")
      $ config_term)

(* --- chain: critical-path diagnosis ----------------------------------------- *)

let chain_cmd =
  let run input max_instructions config top =
    let _, program, trace =
      trace_and_program_of_input input ~max_instructions
    in
    if Ddg_sim.Trace.length trace > 2_000_000 then
      failwith "trace too large; lower --max-instructions";
    let ddg = Ddg.build config trace in
    let chain = Ddg.critical_chain ddg in
    Format.printf
      "critical path %d levels; one maximal chain has %d nodes@.@."
      (Ddg.critical_path ddg) (List.length chain);
    Format.printf "chain composition by operation class:@.";
    List.iter
      (fun (cls, k) ->
        Format.printf "  %-24s %6d  (%d levels)@."
          (Ddg_isa.Opclass.to_string cls)
          k
          (k * Ddg_isa.Opclass.latency cls))
      (Ddg.chain_summary ddg);
    (* the static instructions that recur most along the chain *)
    let by_pc = Hashtbl.create 64 in
    List.iter
      (fun (n : Ddg.node) ->
        Hashtbl.replace by_pc n.pc
          (1 + Option.value ~default:0 (Hashtbl.find_opt by_pc n.pc)))
      chain;
    let ranked =
      List.sort (fun (_, a) (_, b) -> compare b a)
        (Hashtbl.fold (fun pc k acc -> (pc, k) :: acc) by_pc [])
    in
    Format.printf "@.hottest static instructions on the chain:@.";
    let disassemble pc =
      match program with
      | Some (p : Ddg_asm.Program.t) when pc >= 0 && pc < Array.length p.insns
        ->
          Ddg_isa.Insn.to_string p.insns.(pc)
      | _ -> ""
    in
    (* map a pc to the enclosing function label (the greatest code label
       at or below it) *)
    let enclosing pc =
      match program with
      | Some (p : Ddg_asm.Program.t) ->
          let is_function name =
            name = "main"
            || (String.length name > 3 && String.sub name 0 3 = "mc_")
          in
          List.fold_left
            (fun best (name, addr) ->
              if is_function name && addr <= pc && addr < Array.length p.insns
              then
                match best with
                | Some (_, baddr) when baddr >= addr -> best
                | _ -> Some (name, addr)
              else best)
            None p.symbols
          |> Option.map fst
          |> Option.value ~default:""
      | None -> ""
    in
    let source_line pc =
      match program with
      | Some p -> (
          match Ddg_asm.Program.source_line p pc with
          | Some n -> Printf.sprintf "line %d" n
          | None -> "")
      | None -> ""
    in
    List.iteri
      (fun i (pc, k) ->
        if i < top then
          Format.printf "  pc %6d  x%-8d %-28s %-12s %s@." pc k
            (disassemble pc) (enclosing pc) (source_line pc))
      ranked;
    (* chain time by function *)
    let by_fn = Hashtbl.create 16 in
    List.iter
      (fun (n : Ddg.node) ->
        let f = enclosing n.pc in
        Hashtbl.replace by_fn f
          (1 + Option.value ~default:0 (Hashtbl.find_opt by_fn f)))
      chain;
    let fn_ranked =
      List.sort (fun (_, a) (_, b) -> compare b a)
        (Hashtbl.fold (fun f k acc -> (f, k) :: acc) by_fn [])
    in
    Format.printf "@.chain nodes by enclosing label:@.";
    List.iter
      (fun (f, k) ->
        Format.printf "  %-28s %6d (%.1f%%)@."
          (if f = "" then "<unknown>" else f)
          k
          (100.0 *. float_of_int k /. float_of_int (List.length chain)))
      fn_ranked
  in
  let top =
    Arg.(value & opt int 10 & info [ "top" ] ~doc:"Rows of hot pcs to show.")
  in
  let doc =
    "Diagnose what limits a program's parallelism: walk one maximal      dependence chain of the DDG and report its composition (loop      counters? FP recurrences? storage reuse?)."
  in
  Cmd.v
    (Cmd.info "chain" ~doc)
    Term.(
      const run $ input_arg
      $ Arg.(
          value & opt int 500_000 & info [ "max-instructions" ] ~doc:"Cap.")
      $ config_term $ top)

(* --- sharing: multiprocessor data-flow (section 2.3) ------------------------- *)

let sharing_cmd =
  let run input max_instructions config =
    let _, trace = trace_of_input input ~max_instructions in
    if Ddg_sim.Trace.length trace > 2_000_000 then
      failwith "trace too large; lower --max-instructions";
    let ddg = Ddg.build config trace in
    let rows =
      List.concat_map
        (fun processors ->
          List.map
            (fun (label, scheme) ->
              let s = Ddg.partition_sharing ddg ~processors ~scheme in
              let total = s.internal_edges + s.cross_edges in
              [ string_of_int processors;
                label;
                Ddg_report.Table.int_cell s.cross_edges;
                Ddg_report.Table.int_cell s.internal_edges;
                Printf.sprintf "%.1f%%"
                  (if total = 0 then 0.0
                   else 100.0 *. float_of_int s.cross_edges /. float_of_int total) ])
            [ ("contiguous", `Contiguous); ("round-robin", `Round_robin) ])
        [ 2; 4; 8; 16 ]
    in
    Format.printf
      "data sharing between processors executing partitions of the DDG@.@.";
    print_string
      (Ddg_report.Table.render
         ~headers:
           [ ("Procs", Ddg_report.Table.Right);
             ("Scheme", Ddg_report.Table.Left);
             ("Cross edges", Ddg_report.Table.Right);
             ("Internal edges", Ddg_report.Table.Right);
             ("Shared", Ddg_report.Table.Right) ]
         rows)
  in
  let doc =
    "Partition the DDG across processors and measure cross-processor data      flow (the paper's section 2.3 multiprocessor sharing analysis)."
  in
  Cmd.v
    (Cmd.info "sharing" ~doc)
    Term.(
      const run $ input_arg
      $ Arg.(
          value & opt int 500_000 & info [ "max-instructions" ] ~doc:"Cap.")
      $ config_term)

(* --- disasm -------------------------------------------------------------------- *)

let disasm_cmd =
  let run input =
    let program = load_program (classify_input input) in
    Array.iteri
      (fun pc insn ->
        let labels =
          List.filter_map
            (fun (name, addr) ->
              if addr = pc && not (String.contains name '(') then Some name
              else None)
            program.Ddg_asm.Program.symbols
        in
        List.iter
          (fun l ->
            if String.length l < 6 || String.sub l 0 2 <> "L:" then
              Format.printf "%s:@." l)
          (List.sort compare labels);
        let line =
          match Ddg_asm.Program.source_line program pc with
          | Some n -> Printf.sprintf "  # line %d" n
          | None -> ""
        in
        Format.printf "  %4d: %-32s%s@." pc (Ddg_isa.Insn.to_string insn)
          line)
      program.insns
  in
  let doc = "Disassemble a compiled program with source-line annotations." in
  Cmd.v (Cmd.info "disasm" ~doc) Term.(const run $ input_arg)

(* --- run --------------------------------------------------------------------- *)

let run_cmd =
  let run input max_instructions =
    match trace_of_input input ~max_instructions with
    | Some result, trace ->
        print_string result.output;
        Format.eprintf "[%d instructions, %d syscalls, %d trace events]@."
          result.instructions result.syscalls
          (Ddg_sim.Trace.length trace)
    | None, _ -> failwith "cannot execute a trace file"
  in
  let doc = "Execute a program on the simulator and print its output." in
  Cmd.v
    (Cmd.info "run" ~doc)
    Term.(const run $ input_arg $ max_instructions_arg)

(* --- trace ----------------------------------------------------------------------- *)

let trace_cmd =
  let run input max_instructions output =
    let _, trace = trace_of_input input ~max_instructions in
    Ddg_sim.Trace_io.write_file output trace;
    Format.eprintf "wrote %d events to %s@." (Ddg_sim.Trace.length trace)
      output
  in
  let output =
    Arg.(
      required
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Trace file to write.")
  in
  let doc =
    "Simulate a program and save its execution trace to a binary file      (re-analyzable with $(b,analyze) without re-simulating)."
  in
  Cmd.v
    (Cmd.info "trace" ~doc)
    Term.(const run $ input_arg $ max_instructions_arg $ output)

(* --- workloads ------------------------------------------------------------------ *)

let workloads_cmd =
  let run () =
    List.iter
      (fun (w : Ddg_workloads.Workload.t) ->
        Format.printf "%-8s (%s, %s)@.         %s@.@." w.name w.spec_analog
          w.language_kind w.description)
      Ddg_workloads.Registry.all
  in
  let doc = "List the SPEC'89-analog workloads." in
  Cmd.v (Cmd.info "workloads" ~doc) Term.(const run $ const ())

(* --- paper tables/figures --------------------------------------------------------- *)

let size_arg =
  let doc = "Workload size class: tiny, default or large." in
  let kind =
    Arg.enum
      [ ("tiny", Ddg_workloads.Workload.Tiny);
        ("default", Ddg_workloads.Workload.Default);
        ("large", Ddg_workloads.Workload.Large) ]
  in
  Arg.(value & opt kind Ddg_workloads.Workload.Default & info [ "size" ] ~doc)

let verbose_arg =
  Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Progress on stderr.")

let jobs_arg =
  let doc =
    "Parallel jobs: simulate and analyze up to $(docv) workloads \
     concurrently (results are identical for any value)."
  in
  Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let cache_dir_arg =
  let doc =
    "Artifact store directory for traces and analysis results (default \
     ~/.cache/ddg; see $(b,--no-cache))."
  in
  Arg.(value & opt (some string) None & info [ "cache-dir" ] ~docv:"DIR" ~doc)

let no_cache_arg =
  let doc = "Disable the on-disk artifact store (memory cache only)." in
  Arg.(value & flag & info [ "no-cache" ] ~doc)

let runner_of size verbose jobs cache_dir no_cache =
  let progress =
    if verbose then fun msg -> Printf.eprintf "%s\n%!" msg else fun _ -> ()
  in
  let store =
    if no_cache then None
    else
      match Ddg_store.Store.open_ ?dir:cache_dir () with
      | store -> Some store
      | exception Sys_error msg ->
          Printf.eprintf "paragraph: cannot open artifact store (%s); \
                          continuing without cache\n%!"
            msg;
          None
  in
  Ddg_experiments.Runner.create ~size ~progress ?store ~workers:jobs ()

let runner_term =
  Term.(
    const runner_of $ size_arg $ verbose_arg $ jobs_arg $ cache_dir_arg
    $ no_cache_arg)

let paper_cmd name doc render =
  let run runner = print_string (render runner) in
  Cmd.v (Cmd.info name ~doc) Term.(const run $ runner_term)

let fig7_csv_cmd =
  let run runner workload =
    match Ddg_workloads.Registry.find workload with
    | Some w -> print_string (Ddg_experiments.Fig7.csv runner w)
    | None -> failwith ("unknown workload " ^ workload)
  in
  let workload =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"WORKLOAD")
  in
  Cmd.v
    (Cmd.info "fig7-csv" ~doc:"Figure 7 series for one workload, as CSV.")
    Term.(const run $ runner_term $ workload)

let fig8_csv_cmd =
  let run runner = print_string (Ddg_experiments.Fig8.csv runner) in
  Cmd.v
    (Cmd.info "fig8-csv" ~doc:"Figure 8 series for all workloads, as CSV.")
    Term.(const run $ runner_term)

let main =
  let doc =
    "Dynamic dependency graph analysis of ordinary programs (Austin & \
     Sohi, ISCA 1992)"
  in
  Cmd.group (Cmd.info "paragraph" ~version:"1.0.0" ~doc)
    [ analyze_cmd;
      profile_cmd;
      ddg_cmd;
      run_cmd;
      chain_cmd;
      sharing_cmd;
      disasm_cmd;
      trace_cmd;
      workloads_cmd;
      paper_cmd "table2" "Regenerate Table 2 (benchmark inventory)."
        Ddg_experiments.Table2.render;
      paper_cmd "table3" "Regenerate Table 3 (dataflow results)."
        Ddg_experiments.Table3.render;
      paper_cmd "table4" "Regenerate Table 4 (renaming conditions)."
        Ddg_experiments.Table4.render;
      paper_cmd "fig7" "Regenerate Figure 7 (parallelism profiles)."
        Ddg_experiments.Fig7.render;
      paper_cmd "fig8" "Regenerate Figure 8 (window size vs parallelism)."
        Ddg_experiments.Fig8.render;
      fig7_csv_cmd;
      fig8_csv_cmd ]

let () = exit (Cmd.eval main)
