(* The paragraph command-line tool.

   Subcommands:
   - analyze:   trace a Mini-C file, an assembly file or a named workload
                and run the DDG analysis under any switch combination
   - profile:   print the parallelism profile (chart or CSV)
   - ddg:       emit the explicit DDG of a small program as Graphviz DOT
   - run:       just execute a program on the simulator
   - workloads: list the SPEC'89-analog workloads
   - table3 / table4 / fig7 / fig8: regenerate one paper result
   - serve:     run the resident analysis daemon (paragraphd)
   - client:    talk to a running daemon (ping/analyze/simulate/table/
                stats/shutdown) *)

open Cmdliner
open Ddg_paragraph
module Obs = Ddg_obs.Obs

(* Wall time of the CLI-side simulation, so a [--profile] run breaks
   down into simulate + the analyzer's own phase spans. *)
let span_cli_simulate = Obs.span_site "ddg_cli_simulate_ns"

(* --- program / trace loading ------------------------------------------- *)

type source = Workload_name of string | Minic_file of string | Asm_file of string

(* One-line error + nonzero exit: missing or unreadable input files and
   corrupt traces are user errors, not reasons for a backtrace. *)
let die fmt =
  Printf.ksprintf
    (fun msg ->
      prerr_endline ("paragraph: " ^ msg);
      exit 2)
    fmt

let read_source path =
  try
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with Sys_error msg -> die "%s" msg

let load_program = function
  | Workload_name name -> (
      match Ddg_workloads.Registry.find name with
      | Some w -> Ddg_workloads.Workload.program w Ddg_workloads.Workload.Default
      | None -> failwith (Printf.sprintf "unknown workload %S" name))
  | Minic_file path -> (
      let source = read_source path in
      try Ddg_minic.Driver.compile source
      with Ddg_minic.Driver.Error { line; msg } ->
        failwith (Printf.sprintf "%s:%d: %s" path line msg))
  | Asm_file path -> (
      let source = read_source path in
      try Ddg_asm.Assembler.assemble_string source
      with
      | Ddg_asm.Parser.Error { lineno; msg }
      | Ddg_asm.Assembler.Error { lineno; msg } ->
          failwith (Printf.sprintf "%s:%d: %s" path lineno msg))

let read_trace_file path =
  try Ddg_sim.Trace_io.read_file path with
  | Ddg_sim.Trace_io.Corrupt msg -> die "%s: corrupt trace file: %s" path msg
  | Sys_error msg -> die "%s" msg

let classify_input input =
  if Filename.check_suffix input ".mc" || Filename.check_suffix input ".c"
  then Minic_file input
  else if Filename.check_suffix input ".s" || Filename.check_suffix input ".asm"
  then Asm_file input
  else Workload_name input

(* returns [None] for the simulation result and program when the input is
   a saved trace file (no simulation happens) *)
let trace_and_program_of_input input ~max_instructions =
  if Filename.check_suffix input ".trace" then
    (None, None, read_trace_file input)
  else begin
    let program = load_program (classify_input input) in
    let result, trace =
      Obs.time span_cli_simulate (fun () ->
          Ddg_sim.Machine.run_to_trace ~max_instructions program)
    in
    (match result.stop with
    | Ddg_sim.Machine.Halted | Ddg_sim.Machine.Instruction_limit -> ()
    | Ddg_sim.Machine.Fault msg -> failwith ("machine fault: " ^ msg));
    (Some result, Some program, trace)
  end

let trace_of_input input ~max_instructions =
  let result, _, trace = trace_and_program_of_input input ~max_instructions in
  (result, trace)

(* --- per-phase profiling (--profile) ------------------------------------- *)

let obs_site_name name labels =
  match labels with
  | [] -> name
  | ls ->
      Printf.sprintf "%s{%s}" name
        (String.concat ","
           (List.map (fun (k, v) -> Printf.sprintf "%s=%s" k v) ls))

let render_obs_profile (s : Obs.snapshot) =
  let module T = Ddg_report.Table in
  let us ns = T.float_cell ~decimals:1 (float_of_int ns /. 1e3) in
  let rows =
    List.filter_map
      (fun (h : Obs.hist_snapshot) ->
        if h.hs_count = 0 then None
        else
          Some
            [ obs_site_name h.hs_name h.hs_labels;
              T.int_cell h.hs_count;
              T.float_cell ~decimals:2 (float_of_int h.hs_sum /. 1e6);
              T.float_cell ~decimals:1 (Obs.hist_mean h /. 1e3);
              us (Obs.quantile h 0.5);
              us (Obs.quantile h 0.99);
              us h.hs_max ])
      s.histograms
  in
  let counters =
    List.filter (fun (c : Obs.counter_snapshot) -> c.cs_value > 0) s.counters
  in
  String.concat ""
    [ T.render ~title:"phase profile"
        ~headers:
          [ ("Site", T.Left); ("Count", T.Right); ("Total ms", T.Right);
            ("Mean us", T.Right); ("p50 us", T.Right); ("p99 us", T.Right);
            ("Max us", T.Right) ]
        rows;
      (if counters = [] then ""
       else
         "\ncounters:\n"
         ^ String.concat ""
             (List.map
                (fun (c : Obs.counter_snapshot) ->
                  Printf.sprintf "  %-40s %d\n"
                    (obs_site_name c.cs_name c.cs_labels)
                    c.cs_value)
                counters)) ]

let profile_flag_arg =
  Arg.(
    value & flag
    & info [ "profile" ]
        ~doc:
          "Record per-phase timing spans while running and print the \
           breakdown (counts, total/mean/quantile latencies) to stderr.")

(* The profile goes to stderr so [--json]/piped stdout stays clean. *)
let with_profile profile f =
  if not profile then f ()
  else begin
    Obs.enable ();
    Fun.protect
      ~finally:(fun () ->
        prerr_string (render_obs_profile (Obs.snapshot ()));
        flush stderr)
      f
  end

(* --- common options ------------------------------------------------------ *)

let input_arg =
  let doc =
    "Program to analyze: a workload name (see $(b,workloads)), a Mini-C \
     file (.mc/.c) or an assembly file (.s/.asm)."
  in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"PROGRAM" ~doc)

let max_instructions_arg =
  let doc = "Maximum instructions to trace." in
  Arg.(value & opt int 100_000_000 & info [ "max-instructions" ] ~doc)

let optimistic_arg =
  let doc =
    "Assume system calls modify nothing (optimistic) instead of placing a \
     firewall (conservative)."
  in
  Arg.(value & flag & info [ "optimistic" ] ~doc)

let renaming_arg =
  let doc = "Renaming: one of none, regs, regs-stack, all." in
  let kind =
    Arg.enum
      [ ("none", Config.rename_none);
        ("regs", Config.rename_registers_only);
        ("regs-stack", Config.rename_registers_stack);
        ("all", Config.rename_all) ]
  in
  Arg.(value & opt kind Config.rename_all & info [ "renaming" ] ~doc)

let window_arg =
  let doc = "Instruction window size (omit for an unbounded window)." in
  Arg.(value & opt (some int) None & info [ "window"; "w" ] ~doc)

let fu_arg =
  let doc = "Total functional-unit limit (omit for unlimited)." in
  Arg.(value & opt (some int) None & info [ "fu" ] ~doc)

let branch_arg =
  let doc = "Branch handling: perfect, taken, not-taken, or 2bit." in
  let kind =
    Arg.enum
      [ ("perfect", Config.Perfect);
        ("taken", Config.Predict_taken);
        ("not-taken", Config.Predict_not_taken);
        ("2bit", Config.Two_bit 12) ]
  in
  Arg.(value & opt kind Config.Perfect & info [ "branch" ] ~doc)

let config_term =
  let make optimistic renaming window fu branch =
    {
      Config.default with
      syscall_stall = not optimistic;
      renaming;
      window;
      fu = { Config.unlimited_fu with total = fu };
      branch;
    }
  in
  Term.(
    const make $ optimistic_arg $ renaming_arg $ window_arg $ fu_arg
    $ branch_arg)

(* --- analyze ------------------------------------------------------------- *)

let stats_to_json input config (stats : Analyzer.stats) =
  let open Ddg_report.Json in
  Obj
    [ ("program", String input);
      ("switches", String (Config.describe config));
      ("events", Int stats.events);
      ("placed_ops", Int stats.placed_ops);
      ("syscalls", Int stats.syscalls);
      ("critical_path", Int stats.critical_path);
      ("available_parallelism", Float stats.available_parallelism);
      ("live_locations", Int stats.live_locations);
      ("mispredicts", Int stats.mispredicts);
      ( "lifetimes",
        Obj
          [ ("count", Int (Dist.count stats.lifetimes));
            ("mean", Float (Dist.mean stats.lifetimes));
            ( "max",
              if Dist.count stats.lifetimes = 0 then Null
              else Int (Dist.max_value stats.lifetimes) ) ] );
      ( "sharing",
        Obj
          [ ("count", Int (Dist.count stats.sharing));
            ("mean", Float (Dist.mean stats.sharing));
            ( "max",
              if Dist.count stats.sharing = 0 then Null
              else Int (Dist.max_value stats.sharing) ) ] );
      ( "storage",
        Obj
          [ ( "mean_live",
              Float (Profile.average_parallelism stats.storage_profile) );
            ( "peak_live",
              Float (Profile.max_ops_per_level stats.storage_profile) ) ] ) ]

let analyze_segments_arg =
  let doc =
    "Split the trace into $(docv) segments analyzed on parallel domains \
     (defaults to $(b,-j); 1 means sequential). Only configurations the \
     segmented engine supports use it — anything else falls back to the \
     sequential engine — and the stats are identical either way."
  in
  Arg.(value & opt (some int) None & info [ "segments" ] ~docv:"K" ~doc)

let analyze_jobs_arg =
  let doc =
    "Analyze the trace on up to $(docv) parallel domains by segmenting it \
     (see $(b,--segments); results are identical for any value)."
  in
  Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let analyze_cmd =
  let run input max_instructions config json profile jobs segments =
    with_profile profile @@ fun () ->
    let result, trace = trace_of_input input ~max_instructions in
    let segments = max 1 (match segments with Some k -> k | None -> jobs) in
    let stats =
      if segments <= 1 then Analyzer.analyze config trace
      else begin
        let module Pool = Ddg_jobs.Engine.Pool in
        let pool = Pool.pool ~workers:segments () in
        Fun.protect
          ~finally:(fun () -> Pool.shutdown pool)
          (fun () ->
            Segmented.analyze ~exec:(Pool.run_all pool) ~segments config
              trace)
      end
    in
    if json then
      print_endline
        (Ddg_report.Json.to_string (stats_to_json input config stats))
    else begin
      Format.printf "program: %s@." input;
      Format.printf "switches: %s@." (Config.describe config);
      (match result with
      | Some r ->
          Format.printf
            "simulation: %d instructions, %d syscalls, output %d bytes@."
            r.instructions r.syscalls
            (String.length r.output)
      | None ->
          Format.printf "trace file: %d events@."
            (Ddg_sim.Trace.length trace));
      Format.printf "%a@." Analyzer.pp_stats stats
    end
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit machine-readable JSON.")
  in
  let doc = "Run the Paragraph DDG analysis on a program or workload." in
  Cmd.v
    (Cmd.info "analyze" ~doc)
    Term.(
      const run $ input_arg $ max_instructions_arg $ config_term $ json
      $ profile_flag_arg $ analyze_jobs_arg $ analyze_segments_arg)

(* --- advise ---------------------------------------------------------------- *)

module Advise = Ddg_advise.Advise

(* Like [trace_and_program_of_input], but compiling with loop marks so
   the advisor has its loop-attribution side channel. A saved .trace is
   used as-is (it must have been recorded from a marked program);
   hand-written assembly may carry its own [.loop]/[lmark] marks. *)
let marked_trace_of_input input ~max_instructions =
  if Filename.check_suffix input ".trace" then read_trace_file input
  else begin
    let program =
      match classify_input input with
      | Workload_name name -> (
          match Ddg_workloads.Registry.find name with
          | Some w ->
              Ddg_workloads.Workload.program ~marks:true w
                Ddg_workloads.Workload.Default
          | None -> failwith (Printf.sprintf "unknown workload %S" name))
      | Minic_file path -> (
          let source = read_source path in
          try Ddg_minic.Driver.compile ~marks:true source
          with Ddg_minic.Driver.Error { line; msg } ->
            failwith (Printf.sprintf "%s:%d: %s" path line msg))
      | Asm_file path -> (
          let source = read_source path in
          try Ddg_asm.Assembler.assemble_string source
          with
          | Ddg_asm.Parser.Error { lineno; msg }
          | Ddg_asm.Assembler.Error { lineno; msg } ->
              failwith (Printf.sprintf "%s:%d: %s" path lineno msg))
    in
    let result, trace =
      Obs.time span_cli_simulate (fun () ->
          Ddg_sim.Machine.run_to_trace ~max_instructions program)
    in
    (match result.stop with
    | Ddg_sim.Machine.Halted | Ddg_sim.Machine.Instruction_limit -> ()
    | Ddg_sim.Machine.Fault msg -> failwith ("machine fault: " ^ msg));
    trace
  end

let advise_to_json input config (a : Advise.t) =
  let open Ddg_report.Json in
  Obj
    [ ("program", String input);
      ("switches", String (Config.describe config));
      ("total_ops", Int a.Advise.total_ops);
      ("total_cp", Int a.total_cp);
      ( "loops",
        List
          (List.map
             (fun (l : Advise.loop_report) ->
               Obj
                 [ ("id", Int l.Advise.id);
                   ("func", String l.func);
                   ("line", Int l.line);
                   ("kind", String l.kind);
                   ( "classification",
                     String (Advise.classification_name l.classification) );
                   ("entries", Int l.entries);
                   ("iterations", Int l.iterations);
                   ("ops", Int l.ops);
                   ("cp_cycles", Int l.cp_cycles);
                   ("avg_iterations", Float (Advise.avg_iterations l));
                   ("speedup_estimate", Float (Advise.speedup_estimate l));
                   ("benefit", Float (Advise.benefit l));
                   ( "carried",
                     List
                       (List.map
                          (fun (c : Advise.carried_dep) ->
                            Obj
                              [ ( "location",
                                  String (Ddg_isa.Loc.to_string c.Advise.location)
                                );
                                ("distance", Int c.distance);
                                ("occurrences", Int c.occurrences) ])
                          l.carried) ) ])
             a.loops) ) ]

let render_advise input config (a : Advise.t) =
  let module T = Ddg_report.Table in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "program: %s\n" input);
  Buffer.add_string buf
    (Printf.sprintf "switches: %s\n" (Config.describe config));
  Buffer.add_string buf
    (Printf.sprintf "trace: %d events, critical path %d cycles\n\n"
       a.Advise.total_ops a.total_cp);
  if a.loops = [] then
    Buffer.add_string buf
      "no loops observed (trace has no loop marks; compile with marks or \
       name a workload)\n"
  else begin
    let rows =
      List.mapi
        (fun i (l : Advise.loop_report) ->
          [ string_of_int (i + 1);
            Printf.sprintf "%s:%d" l.Advise.func l.line;
            l.kind;
            Advise.classification_name l.classification;
            T.int_cell l.entries;
            T.float_cell ~decimals:1 (Advise.avg_iterations l);
            T.int_cell l.ops;
            T.int_cell l.cp_cycles;
            T.float_cell ~decimals:1 (Advise.speedup_estimate l);
            Printf.sprintf "%.1f%%"
              (if a.total_ops = 0 then 0.0
               else 100.0 *. Advise.benefit l /. float_of_int a.total_ops) ])
        a.loops
    in
    Buffer.add_string buf
      (T.render ~title:"loops ranked by parallelization benefit"
         ~headers:
           [ ("#", T.Right); ("Loop", T.Left); ("Kind", T.Left);
             ("Classification", T.Left); ("Entries", T.Right);
             ("Iters/entry", T.Right); ("Ops", T.Right);
             ("CP cycles", T.Right); ("Speedup", T.Right);
             ("Benefit", T.Right) ]
         rows);
    let with_deps =
      List.filter
        (fun (l : Advise.loop_report) -> l.Advise.carried <> [])
        a.loops
    in
    if with_deps <> [] then begin
      Buffer.add_string buf "\ncarried dependences (tightest first):\n";
      List.iter
        (fun (l : Advise.loop_report) ->
          List.iter
            (fun (c : Advise.carried_dep) ->
              Buffer.add_string buf
                (Printf.sprintf "  %-16s %-10s dist %-3d x%d\n"
                   (Printf.sprintf "%s:%d" l.Advise.func l.line)
                   (Ddg_isa.Loc.to_string c.Advise.location)
                   c.distance c.occurrences))
            l.Advise.carried)
        with_deps
    end
  end;
  Buffer.contents buf

let advise_cmd =
  let run input max_instructions config json profile =
    with_profile profile @@ fun () ->
    let trace = marked_trace_of_input input ~max_instructions in
    let advice = Advise.analyze ~config trace in
    if json then
      print_endline
        (Ddg_report.Json.to_string (advise_to_json input config advice))
    else print_string (render_advise input config advice)
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit machine-readable JSON.")
  in
  let doc =
    "Classify every executed source loop as DOALL, reduction or      loop-carried (with the minimum observed dependence distance) and      rank loops by how much work parallelizing each would overlap. Works      on workloads, Mini-C files, marked assembly, or saved marked traces."
  in
  Cmd.v
    (Cmd.info "advise" ~doc)
    Term.(
      const run $ input_arg $ max_instructions_arg $ config_term $ json
      $ profile_flag_arg)

(* --- profile -------------------------------------------------------------- *)

let profile_cmd =
  let run input max_instructions config csv storage =
    let _, trace = trace_of_input input ~max_instructions in
    let stats = Analyzer.analyze config trace in
    let profile = if storage then stats.storage_profile else stats.profile in
    let series = Profile.series profile in
    if csv then
      print_string
        (Ddg_report.Csv.to_string
           ~header:[ "level_lo"; "level_hi"; "ops_per_level" ]
           (List.map
              (fun (lo, hi, avg) ->
                [ string_of_int lo; string_of_int hi;
                  Printf.sprintf "%.4f" avg ])
              series))
    else begin
      Format.printf "%s: %d levels, %s mass %d, average %.2f per level@."
        input (Profile.levels profile)
        (if storage then "liveness" else "ops")
        (Profile.total_ops profile)
        (Profile.average_parallelism profile);
      print_string
        (Ddg_report.Chart.column_chart
           ~y_label:
             (if storage then "live values" else "operations available")
           ~log_y:true
           (List.map
              (fun (lo, hi, avg) -> (float_of_int (lo + hi) /. 2.0, avg))
              series))
    end
  in
  let csv =
    Arg.(value & flag & info [ "csv" ] ~doc:"Emit CSV instead of a chart.")
  in
  let storage =
    Arg.(
      value & flag
      & info [ "storage" ]
          ~doc:
            "Show the storage (live values per level) profile instead of              the parallelism profile.")
  in
  let doc =
    "Print the parallelism profile (or, with $(b,--storage), the      memory-requirement profile) of a program or workload."
  in
  Cmd.v
    (Cmd.info "profile" ~doc)
    Term.(
      const run $ input_arg $ max_instructions_arg $ config_term $ csv
      $ storage)

(* --- ddg ------------------------------------------------------------------- *)

let ddg_cmd =
  let run input max_instructions config =
    let _, trace = trace_of_input input ~max_instructions in
    if Ddg_sim.Trace.length trace > 200_000 then
      failwith
        "trace too large for explicit DDG construction; use --max-instructions";
    let ddg = Ddg.build config trace in
    print_string (Ddg.to_dot ddg)
  in
  let doc =
    "Build the explicit DDG of a (small) program and print Graphviz DOT."
  in
  Cmd.v
    (Cmd.info "ddg" ~doc)
    Term.(
      const run $ input_arg
      $ Arg.(value & opt int 2_000 & info [ "max-instructions" ] ~doc:"Cap.")
      $ config_term)

(* --- chain: critical-path diagnosis ----------------------------------------- *)

let chain_cmd =
  let run input max_instructions config top =
    let _, program, trace =
      trace_and_program_of_input input ~max_instructions
    in
    if Ddg_sim.Trace.length trace > 2_000_000 then
      failwith "trace too large; lower --max-instructions";
    let ddg = Ddg.build config trace in
    let chain = Ddg.critical_chain ddg in
    Format.printf
      "critical path %d levels; one maximal chain has %d nodes@.@."
      (Ddg.critical_path ddg) (List.length chain);
    Format.printf "chain composition by operation class:@.";
    List.iter
      (fun (cls, k) ->
        Format.printf "  %-24s %6d  (%d levels)@."
          (Ddg_isa.Opclass.to_string cls)
          k
          (k * Ddg_isa.Opclass.latency cls))
      (Ddg.chain_summary ddg);
    (* the static instructions that recur most along the chain *)
    let by_pc = Hashtbl.create 64 in
    List.iter
      (fun (n : Ddg.node) ->
        Hashtbl.replace by_pc n.pc
          (1 + Option.value ~default:0 (Hashtbl.find_opt by_pc n.pc)))
      chain;
    let ranked =
      List.sort (fun (_, a) (_, b) -> compare b a)
        (Hashtbl.fold (fun pc k acc -> (pc, k) :: acc) by_pc [])
    in
    Format.printf "@.hottest static instructions on the chain:@.";
    let disassemble pc =
      match program with
      | Some (p : Ddg_asm.Program.t) when pc >= 0 && pc < Array.length p.insns
        ->
          Ddg_isa.Insn.to_string p.insns.(pc)
      | _ -> ""
    in
    (* map a pc to the enclosing function label (the greatest code label
       at or below it) *)
    let enclosing pc =
      match program with
      | Some (p : Ddg_asm.Program.t) ->
          let is_function name =
            name = "main"
            || (String.length name > 3 && String.sub name 0 3 = "mc_")
          in
          List.fold_left
            (fun best (name, addr) ->
              if is_function name && addr <= pc && addr < Array.length p.insns
              then
                match best with
                | Some (_, baddr) when baddr >= addr -> best
                | _ -> Some (name, addr)
              else best)
            None p.symbols
          |> Option.map fst
          |> Option.value ~default:""
      | None -> ""
    in
    let source_line pc =
      match program with
      | Some p -> (
          match Ddg_asm.Program.source_line p pc with
          | Some n -> Printf.sprintf "line %d" n
          | None -> "")
      | None -> ""
    in
    List.iteri
      (fun i (pc, k) ->
        if i < top then
          Format.printf "  pc %6d  x%-8d %-28s %-12s %s@." pc k
            (disassemble pc) (enclosing pc) (source_line pc))
      ranked;
    (* chain time by function *)
    let by_fn = Hashtbl.create 16 in
    List.iter
      (fun (n : Ddg.node) ->
        let f = enclosing n.pc in
        Hashtbl.replace by_fn f
          (1 + Option.value ~default:0 (Hashtbl.find_opt by_fn f)))
      chain;
    let fn_ranked =
      List.sort (fun (_, a) (_, b) -> compare b a)
        (Hashtbl.fold (fun f k acc -> (f, k) :: acc) by_fn [])
    in
    Format.printf "@.chain nodes by enclosing label:@.";
    List.iter
      (fun (f, k) ->
        Format.printf "  %-28s %6d (%.1f%%)@."
          (if f = "" then "<unknown>" else f)
          k
          (100.0 *. float_of_int k /. float_of_int (List.length chain)))
      fn_ranked
  in
  let top =
    Arg.(value & opt int 10 & info [ "top" ] ~doc:"Rows of hot pcs to show.")
  in
  let doc =
    "Diagnose what limits a program's parallelism: walk one maximal      dependence chain of the DDG and report its composition (loop      counters? FP recurrences? storage reuse?)."
  in
  Cmd.v
    (Cmd.info "chain" ~doc)
    Term.(
      const run $ input_arg
      $ Arg.(
          value & opt int 500_000 & info [ "max-instructions" ] ~doc:"Cap.")
      $ config_term $ top)

(* --- sharing: multiprocessor data-flow (section 2.3) ------------------------- *)

let sharing_cmd =
  let run input max_instructions config =
    let _, trace = trace_of_input input ~max_instructions in
    if Ddg_sim.Trace.length trace > 2_000_000 then
      failwith "trace too large; lower --max-instructions";
    let ddg = Ddg.build config trace in
    let rows =
      List.concat_map
        (fun processors ->
          List.map
            (fun (label, scheme) ->
              let s = Ddg.partition_sharing ddg ~processors ~scheme in
              let total = s.internal_edges + s.cross_edges in
              [ string_of_int processors;
                label;
                Ddg_report.Table.int_cell s.cross_edges;
                Ddg_report.Table.int_cell s.internal_edges;
                Printf.sprintf "%.1f%%"
                  (if total = 0 then 0.0
                   else 100.0 *. float_of_int s.cross_edges /. float_of_int total) ])
            [ ("contiguous", `Contiguous); ("round-robin", `Round_robin) ])
        [ 2; 4; 8; 16 ]
    in
    Format.printf
      "data sharing between processors executing partitions of the DDG@.@.";
    print_string
      (Ddg_report.Table.render
         ~headers:
           [ ("Procs", Ddg_report.Table.Right);
             ("Scheme", Ddg_report.Table.Left);
             ("Cross edges", Ddg_report.Table.Right);
             ("Internal edges", Ddg_report.Table.Right);
             ("Shared", Ddg_report.Table.Right) ]
         rows)
  in
  let doc =
    "Partition the DDG across processors and measure cross-processor data      flow (the paper's section 2.3 multiprocessor sharing analysis)."
  in
  Cmd.v
    (Cmd.info "sharing" ~doc)
    Term.(
      const run $ input_arg
      $ Arg.(
          value & opt int 500_000 & info [ "max-instructions" ] ~doc:"Cap.")
      $ config_term)

(* --- disasm -------------------------------------------------------------------- *)

let disasm_cmd =
  let run input =
    let program = load_program (classify_input input) in
    Array.iteri
      (fun pc insn ->
        let labels =
          List.filter_map
            (fun (name, addr) ->
              if addr = pc && not (String.contains name '(') then Some name
              else None)
            program.Ddg_asm.Program.symbols
        in
        List.iter
          (fun l ->
            if String.length l < 6 || String.sub l 0 2 <> "L:" then
              Format.printf "%s:@." l)
          (List.sort compare labels);
        let line =
          match Ddg_asm.Program.source_line program pc with
          | Some n -> Printf.sprintf "  # line %d" n
          | None -> ""
        in
        Format.printf "  %4d: %-32s%s@." pc (Ddg_isa.Insn.to_string insn)
          line)
      program.insns
  in
  let doc = "Disassemble a compiled program with source-line annotations." in
  Cmd.v (Cmd.info "disasm" ~doc) Term.(const run $ input_arg)

(* --- run --------------------------------------------------------------------- *)

let run_cmd =
  let run input max_instructions profile =
    with_profile profile @@ fun () ->
    match trace_of_input input ~max_instructions with
    | Some result, trace ->
        print_string result.output;
        Format.eprintf "[%d instructions, %d syscalls, %d trace events]@."
          result.instructions result.syscalls
          (Ddg_sim.Trace.length trace)
    | None, _ -> failwith "cannot execute a trace file"
  in
  let doc = "Execute a program on the simulator and print its output." in
  Cmd.v
    (Cmd.info "run" ~doc)
    Term.(const run $ input_arg $ max_instructions_arg $ profile_flag_arg)

(* --- trace ----------------------------------------------------------------------- *)

let trace_cmd =
  let run input max_instructions output =
    let _, trace = trace_of_input input ~max_instructions in
    Ddg_sim.Trace_io.write_file output trace;
    Format.eprintf "wrote %d events to %s@." (Ddg_sim.Trace.length trace)
      output
  in
  let output =
    Arg.(
      required
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Trace file to write.")
  in
  let doc =
    "Simulate a program and save its execution trace to a binary file      (re-analyzable with $(b,analyze) without re-simulating)."
  in
  Cmd.v
    (Cmd.info "trace" ~doc)
    Term.(const run $ input_arg $ max_instructions_arg $ output)

(* --- workloads ------------------------------------------------------------------ *)

let workloads_cmd =
  let run () =
    List.iter
      (fun (w : Ddg_workloads.Workload.t) ->
        Format.printf "%-8s (%s, %s)@.         %s@.@." w.name w.spec_analog
          w.language_kind w.description)
      Ddg_workloads.Registry.all
  in
  let doc = "List the SPEC'89-analog workloads." in
  Cmd.v (Cmd.info "workloads" ~doc) Term.(const run $ const ())

(* --- paper tables/figures --------------------------------------------------------- *)

let size_arg =
  let doc = "Workload size class: tiny, default or large." in
  let kind =
    Arg.enum
      [ ("tiny", Ddg_workloads.Workload.Tiny);
        ("default", Ddg_workloads.Workload.Default);
        ("large", Ddg_workloads.Workload.Large) ]
  in
  Arg.(value & opt kind Ddg_workloads.Workload.Default & info [ "size" ] ~doc)

let verbose_arg =
  Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Progress on stderr.")

let jobs_arg =
  let doc =
    "Parallel jobs: simulate and analyze up to $(docv) workloads \
     concurrently, and segment supported single-trace analyses across \
     the same $(docv) domains (results are identical for any value)."
  in
  Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let cache_dir_arg =
  let doc =
    "Artifact store directory for traces and analysis results (default \
     ~/.cache/ddg; see $(b,--no-cache))."
  in
  Arg.(value & opt (some string) None & info [ "cache-dir" ] ~docv:"DIR" ~doc)

let no_cache_arg =
  let doc = "Disable the on-disk artifact store (memory cache only)." in
  Arg.(value & flag & info [ "no-cache" ] ~doc)

let runner_of ?trace_budget size verbose jobs cache_dir no_cache =
  let progress =
    if verbose then fun msg -> Printf.eprintf "%s\n%!" msg else fun _ -> ()
  in
  let store =
    if no_cache then None
    else
      match Ddg_store.Store.open_ ?dir:cache_dir () with
      | store -> Some store
      | exception Sys_error msg ->
          Printf.eprintf "paragraph: cannot open artifact store (%s); \
                          continuing without cache\n%!"
            msg;
          None
  in
  Ddg_experiments.Runner.create ~size ~progress ?store ~workers:jobs
    ?trace_budget ()

let runner_term =
  Term.(
    const (fun size -> runner_of size)
    $ size_arg $ verbose_arg $ jobs_arg $ cache_dir_arg
    $ no_cache_arg)

let paper_cmd name doc render =
  let run runner = print_string (render runner) in
  Cmd.v (Cmd.info name ~doc) Term.(const run $ runner_term)

let fig7_csv_cmd =
  let run runner workload =
    match Ddg_workloads.Registry.find workload with
    | Some w -> print_string (Ddg_experiments.Fig7.csv runner w)
    | None -> failwith ("unknown workload " ^ workload)
  in
  let workload =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"WORKLOAD")
  in
  Cmd.v
    (Cmd.info "fig7-csv" ~doc:"Figure 7 series for one workload, as CSV.")
    Term.(const run $ runner_term $ workload)

let fig8_csv_cmd =
  let run runner = print_string (Ddg_experiments.Fig8.csv runner) in
  Cmd.v
    (Cmd.info "fig8-csv" ~doc:"Figure 8 series for all workloads, as CSV.")
    Term.(const run $ runner_term)

(* --- fsck ------------------------------------------------------------------------ *)

let fsck_cmd =
  let run cache_dir json =
    let store =
      try Ddg_store.Store.open_ ?dir:cache_dir ()
      with Sys_error msg -> die "cannot open artifact store: %s" msg
    in
    let r = Ddg_store.Store.fsck store in
    if json then
      print_endline
        (Ddg_report.Json.to_string
           (Ddg_report.Json.Obj
              [ ("scanned", Int r.Ddg_store.Store.scanned);
                ("valid", Int r.valid);
                ("quarantined", Int r.quarantined);
                ("missing", Int r.missing);
                ("swept_temps", Int r.swept_temps) ]))
    else begin
      Format.printf "scanned:     %d artifacts@." r.Ddg_store.Store.scanned;
      Format.printf "valid:       %d@." r.valid;
      Format.printf "quarantined: %d (moved aside with a .reason file)@."
        r.quarantined;
      Format.printf "missing:     %d manifest entries without a file@."
        r.missing;
      Format.printf "swept:       %d stale temp files@." r.swept_temps
    end;
    if r.quarantined > 0 || r.missing > 0 then exit 1
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit machine-readable JSON.")
  in
  let doc =
    "Verify the on-disk artifact store: check every artifact's header,      length and digest against the manifest, quarantine anything      corrupt or misplaced, sweep temp files left by dead writers, and      rebuild the manifest atomically. Exits 1 if anything was      quarantined or missing."
  in
  Cmd.v (Cmd.info "fsck" ~doc) Term.(const run $ cache_dir_arg $ json)

(* --- serve / client -------------------------------------------------------- *)

module Server = Ddg_server.Server
module Client = Ddg_server.Client
module Protocol = Ddg_protocol.Protocol
module Router = Ddg_cluster.Router
module Fleet = Ddg_cluster.Fleet

let runtime_dir =
  lazy
    (try Sys.getenv "XDG_RUNTIME_DIR"
     with Not_found -> Filename.get_temp_dir_name ())

let default_socket =
  lazy (Filename.concat (Lazy.force runtime_dir) "paragraphd.sock")

(* the cluster front door: `paragraph cluster` binds its router here by
   default, and `client --via-router` aims here by default *)
let default_cluster_socket =
  lazy (Filename.concat (Lazy.force runtime_dir) "paragraphd-cluster.sock")

let tcp_conv =
  let parse s =
    match String.rindex_opt s ':' with
    | Some i -> (
        let addr = String.sub s 0 i in
        match int_of_string_opt
                (String.sub s (i + 1) (String.length s - i - 1))
        with
        | Some port when port > 0 && port < 65536 -> Ok (addr, port)
        | _ -> Error (`Msg "expected ADDR:PORT"))
    | None -> Error (`Msg "expected ADDR:PORT")
  in
  Arg.conv (parse, fun ppf (a, p) -> Format.fprintf ppf "%s:%d" a p)

let describe_endpoint = function
  | `Unix path -> "unix:" ^ path
  | `Tcp (addr, port) -> Printf.sprintf "tcp:%s:%d" addr port

let socket_doc = "Unix-domain socket path of the daemon."

let trace_budget_mb_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "trace-budget" ] ~docv:"MIB"
        ~doc:
          "Cap resident decoded traces at $(docv) MiB; least recently \
           used traces are evicted past the budget.")

let serve_cmd =
  let run size verbose jobs cache_dir no_cache trace_budget_mb socket tcp
      max_inflight max_connections deadline =
    (match Ddg_fault.Fault.configure_from_env () with
    | Ok false -> ()
    | Ok true ->
        Printf.eprintf
          "paragraphd: fault injection ARMED from DDG_FAULTS=%s\n%!"
          (try Sys.getenv "DDG_FAULTS" with Not_found -> "")
    | Error msg -> die "DDG_FAULTS: %s" msg);
    let trace_budget =
      Option.map (fun mb -> mb * 1024 * 1024) trace_budget_mb
    in
    let runner =
      runner_of ?trace_budget size verbose jobs cache_dir no_cache
    in
    let endpoints =
      `Unix socket :: (match tcp with Some (a, p) -> [ `Tcp (a, p) ] | None -> [])
    in
    let server =
      Server.create ~runner ~workers:jobs ~max_inflight ~max_connections
        ~default_deadline_s:deadline
        ~log:(fun msg -> Printf.eprintf "paragraphd: %s\n%!" msg)
        endpoints
    in
    Server.install_signal_handlers server;
    Server.run server
  in
  let trace_budget_mb = trace_budget_mb_arg in
  let socket =
    Arg.(
      value
      & opt string (Lazy.force default_socket)
      & info [ "socket" ] ~docv:"PATH" ~doc:socket_doc)
  in
  let tcp =
    Arg.(
      value
      & opt (some tcp_conv) None
      & info [ "tcp" ] ~docv:"ADDR:PORT"
          ~doc:"Also listen on a TCP address, e.g. 127.0.0.1:7432.")
  in
  let max_inflight =
    Arg.(
      value & opt int 64
      & info [ "max-inflight" ] ~docv:"N"
          ~doc:
            "Refuse new work with a Busy error once $(docv) requests are \
             queued or running.")
  in
  let max_connections =
    Arg.(
      value & opt int 256
      & info [ "max-connections" ] ~docv:"N"
          ~doc:
            "Close new connections at accept once $(docv) handlers are \
             already active.")
  in
  let deadline =
    Arg.(
      value & opt float 600.0
      & info [ "deadline" ] ~docv:"SECONDS"
          ~doc:"Default per-request deadline for clients that set none.")
  in
  let doc =
    "Run the resident analysis daemon: serve analyze/simulate/table      requests over a Unix-domain socket (and optionally TCP), keeping      traces and results warm in memory and the artifact store. SIGINT or      SIGTERM drains gracefully."
  in
  Cmd.v
    (Cmd.info "serve" ~doc)
    Term.(
      const run $ size_arg $ verbose_arg $ jobs_arg $ cache_dir_arg
      $ no_cache_arg $ trace_budget_mb $ socket $ tcp $ max_inflight
      $ max_connections $ deadline)

let cluster_cmd =
  let run size verbose jobs cache_dir trace_budget_mb socket nodes vnodes
      max_inflight max_connections deadline connect_timeout_ms scrub_rate =
    (match Ddg_fault.Fault.configure_from_env () with
    | Ok false -> ()
    | Ok true ->
        (* children fork after this, so every backend inherits the armed
           plan — one DDG_FAULTS drives the whole fleet *)
        Printf.eprintf
          "paragraph-cluster: fault injection ARMED from DDG_FAULTS=%s\n%!"
          (try Sys.getenv "DDG_FAULTS" with Not_found -> "")
    | Error msg -> die "DDG_FAULTS: %s" msg);
    if nodes < 1 then die "--nodes must be at least 1";
    if vnodes < 1 then die "--vnodes must be at least 1";
    if connect_timeout_ms <= 0.0 then die "--connect-timeout-ms must be > 0";
    if scrub_rate < 0.0 then die "--scrub-rate must be >= 0";
    let trace_budget =
      Option.map (fun mb -> mb * 1024 * 1024) trace_budget_mb
    in
    let base_store =
      match cache_dir with
      | Some dir -> dir
      | None -> Ddg_store.Store.default_dir ()
    in
    let members =
      Fleet.members ~nodes ~base_socket:socket ~base_store
    in
    let log prefix msg = Printf.eprintf "%s: %s\n%!" prefix msg in
    (* the supervisor forks its spawner child now, while this process
       is still single-threaded; every backend (re)spawn is a fork
       from that clean one-thread image *)
    let sup =
      Fleet.supervisor
        ~log:(log "paragraph-cluster")
        ~spawn:(fun (self : Fleet.member) ->
          Fleet.fork_backend ~vnodes ~workers:jobs ?trace_budget
            ~max_inflight ~default_deadline_s:deadline
            ?scrub_rate:(if scrub_rate > 0.0 then Some scrub_rate else None)
            ~log:
              (if verbose then log ("paragraphd-" ^ self.Fleet.node)
               else ignore)
            ~size ~members ~self ())
        ~members ()
    in
    List.iter
      (fun (m : Fleet.member) ->
        Printf.eprintf "paragraph-cluster: node %s socket %s\n%!" m.Fleet.node
          (describe_endpoint m.Fleet.endpoint);
        Fleet.supervisor_spawn sup m.Fleet.node)
      members;
    let router =
      Router.create ~vnodes ~size
        ~connect_timeout_s:(connect_timeout_ms /. 1000.0)
        ~max_connections
        ~on_retire:(Fleet.supervisor_decommissioned sup)
        ~backends:
          (List.map
             (fun (m : Fleet.member) -> (m.Fleet.node, m.Fleet.endpoint))
             members)
        ~log:(log "paragraph-cluster")
        [ `Unix socket ]
    in
    (* crashed backends respawn with backoff; a flapping one is retired
       from the ring instead of being respawned forever *)
    Fleet.supervisor_watch sup ~on_decommission:(fun node ->
        ignore (Router.decommission router ~node));
    Router.install_signal_handlers router;
    Router.run router;
    (* the router is down; the supervisor terminates and reaps the fleet *)
    Fleet.supervisor_stop sup
  in
  let socket =
    Arg.(
      value
      & opt string (Lazy.force default_cluster_socket)
      & info [ "socket" ] ~docv:"PATH"
          ~doc:
            "Router socket path; backend $(i,i) listens on \
             $(i,PATH).node$(i,i).")
  in
  let nodes =
    Arg.(
      value & opt int 3
      & info [ "nodes" ] ~docv:"N" ~doc:"Number of backend daemons to fork.")
  in
  let vnodes =
    Arg.(
      value & opt int 64
      & info [ "vnodes" ] ~docv:"N"
          ~doc:"Virtual nodes per backend on the consistent-hash ring.")
  in
  let max_inflight =
    Arg.(
      value & opt int 64
      & info [ "max-inflight" ] ~docv:"N"
          ~doc:"Per-backend in-flight request cap (as $(b,serve)).")
  in
  let max_connections =
    Arg.(
      value & opt int 256
      & info [ "max-connections" ] ~docv:"N"
          ~doc:"Router connection cap.")
  in
  let deadline =
    Arg.(
      value & opt float 600.0
      & info [ "deadline" ] ~docv:"SECONDS"
          ~doc:"Default per-request deadline (as $(b,serve)).")
  in
  let connect_timeout_ms =
    Arg.(
      value & opt float 1000.0
      & info [ "connect-timeout-ms" ] ~docv:"MS"
          ~doc:
            "Router-to-backend connect timeout: health probes and relays \
             give up on an unresponsive backend after $(docv) ms.")
  in
  let scrub_rate =
    Arg.(
      value & opt float 100.0
      & info [ "scrub-rate" ] ~docv:"N"
          ~doc:
            "Anti-entropy scrub pace: each backend re-verifies its store \
             in the background at $(docv) artifacts per second, repairing \
             corruption from peers and re-replicating keys whose ring \
             owner changed. 0 disables scrubbing.")
  in
  let doc =
    "Run a self-healing sharded fleet: fork $(b,--nodes) backend daemons,      each with a private artifact store, and route requests to them over      a consistent-hash ring from a router on the main socket. A backend      serving a key it does not own pulls the owner's artifact into its      own store (fetch-through) instead of recomputing. The router      health-checks backends, circuit-breaks dead ones and re-routes to      ring successors; a supervisor respawns crashed backends with backoff      (decommissioning flapping ones), each backend scrubs its store in      the background, and $(b,client join)/$(b,client drain) change      membership live. $(b,client stats) aggregates and $(b,client      metrics) federates the whole fleet."
  in
  Cmd.v
    (Cmd.info "cluster" ~doc)
    Term.(
      const run $ size_arg $ verbose_arg $ jobs_arg $ cache_dir_arg
      $ trace_budget_mb_arg $ socket $ nodes $ vnodes $ max_inflight
      $ max_connections $ deadline $ connect_timeout_ms $ scrub_rate)

let client_endpoint_term =
  let socket =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH" ~doc:socket_doc)
  in
  let tcp =
    Arg.(
      value
      & opt (some tcp_conv) None
      & info [ "tcp" ] ~docv:"ADDR:PORT" ~doc:"TCP address of the daemon.")
  in
  let via_router =
    Arg.(
      value & flag
      & info [ "via-router" ]
          ~doc:
            "Talk to the cluster router's default socket (as bound by \
             $(b,paragraph cluster)) instead of the standalone daemon's. \
             An explicit $(b,--socket) or $(b,--tcp) wins.")
  in
  let make socket tcp via_router =
    match (tcp, socket) with
    | Some (a, p), _ -> `Tcp (a, p)
    | None, Some path -> `Unix path
    | None, None ->
        `Unix
          (Lazy.force
             (if via_router then default_cluster_socket else default_socket))
  in
  Term.(const make $ socket $ tcp $ via_router)

let retry_arg =
  Arg.(
    value & opt float 0.0
    & info [ "retry" ] ~docv:"SECONDS"
        ~doc:
          "Keep retrying the connection for $(docv) seconds if the daemon \
           is not (yet) listening.")

let connect_timeout_ms_arg =
  Arg.(
    value & opt float 0.0
    & info [ "connect-timeout-ms" ] ~docv:"MS"
        ~doc:
          "Bound each connection attempt to $(docv) ms; a routable but \
           unresponsive endpoint fails with ETIMEDOUT instead of hanging \
           for the OS default (which can be minutes). 0 keeps the OS \
           default.")

let deadline_ms_arg =
  Arg.(
    value & opt int 0
    & info [ "deadline-ms" ] ~docv:"MS"
        ~doc:
          "Per-request deadline; past it the server answers \
           deadline_exceeded. 0 uses the server default.")

let retry_attempts_arg =
  Arg.(
    value
    & opt int Client.default_retry.Client.attempts
    & info [ "retry-attempts" ] ~docv:"N"
        ~doc:
          "Total attempts per request, including the first. Idempotent \
           verbs are replayed with backoff after a Busy refusal, a worker \
           crash or a lost connection; 1 disables replay.")

let retry_base_ms_arg =
  Arg.(
    value
    & opt float (1000.0 *. Client.default_retry.Client.base_delay_s)
    & info [ "retry-base-ms" ] ~docv:"MS"
        ~doc:
          "First backoff sleep before a replay; later sleeps use \
           decorrelated jitter up to a fixed ceiling.")

let retry_policy_term =
  let make attempts base_ms =
    if attempts < 1 then die "--retry-attempts must be at least 1";
    if base_ms < 0.0 then die "--retry-base-ms must be non-negative";
    { Client.default_retry with
      Client.attempts;
      base_delay_s = base_ms /. 1000.0 }
  in
  Term.(const make $ retry_attempts_arg $ retry_base_ms_arg)

let client_request endpoint retry connect_timeout_ms policy deadline_ms req
    handle =
  if connect_timeout_ms < 0.0 then die "--connect-timeout-ms must be >= 0";
  try
    Client.with_session ~retry:policy ~retry_for_s:retry
      ~connect_timeout_s:(connect_timeout_ms /. 1000.0) endpoint (fun s ->
        handle (Client.call ~deadline_ms s req))
  with
  | Client.Server_error { code; message } ->
      prerr_endline
        (Printf.sprintf "paragraph: server error (%s): %s"
           (Protocol.error_code_name code) message);
      exit 3
  | Protocol.Error msg -> die "protocol error: %s" msg
  | End_of_file -> die "server closed the connection"
  | Unix.Unix_error (e, _, _) ->
      die "cannot reach daemon at %s: %s" (describe_endpoint endpoint)
        (Unix.error_message e)

let unexpected_response () = die "unexpected response kind from server"

let client_ping_cmd =
  let run endpoint retry connect_timeout policy deadline_ms delay_ms =
    let t0 = Unix.gettimeofday () in
    client_request endpoint retry connect_timeout policy deadline_ms
      (Protocol.Ping { delay_ms })
      (function
      | Protocol.Pong ->
          Format.printf "pong (%.1f ms)@."
            (1000.0 *. (Unix.gettimeofday () -. t0))
      | _ -> unexpected_response ())
  in
  let delay_ms =
    Arg.(
      value & opt int 0
      & info [ "delay-ms" ] ~docv:"MS"
          ~doc:"Hold a server worker slot for $(docv) ms before answering.")
  in
  Cmd.v
    (Cmd.info "ping" ~doc:"Round-trip liveness probe.")
    Term.(
      const run $ client_endpoint_term $ retry_arg $ connect_timeout_ms_arg
      $ retry_policy_term $ deadline_ms_arg $ delay_ms)

let client_analyze_cmd =
  let run endpoint retry connect_timeout policy deadline_ms workload config
      json =
    client_request endpoint retry connect_timeout policy deadline_ms
      (Protocol.Analyze { workload; config })
      (function
      | Protocol.Analyzed stats ->
          if json then
            print_endline
              (Ddg_report.Json.to_string (stats_to_json workload config stats))
          else begin
            Format.printf "workload: %s@." workload;
            Format.printf "switches: %s@." (Config.describe config);
            Format.printf "%a@." Analyzer.pp_stats stats
          end
      | _ -> unexpected_response ())
  in
  let workload =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"WORKLOAD")
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit machine-readable JSON.")
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Analyze a workload on the daemon (served from its warm caches      when possible). Same switches and output as the local $(b,analyze).")
    Term.(
      const run $ client_endpoint_term $ retry_arg $ connect_timeout_ms_arg
      $ retry_policy_term $ deadline_ms_arg $ workload $ config_term $ json)

let client_advise_cmd =
  let run endpoint retry connect_timeout policy deadline_ms workload config
      json =
    client_request endpoint retry connect_timeout policy deadline_ms
      (Protocol.Advise { workload; config })
      (function
      | Protocol.Advised advice ->
          if json then
            print_endline
              (Ddg_report.Json.to_string
                 (advise_to_json workload config advice))
          else print_string (render_advise workload config advice)
      | _ -> unexpected_response ())
  in
  let workload =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"WORKLOAD")
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit machine-readable JSON.")
  in
  Cmd.v
    (Cmd.info "advise"
       ~doc:
         "Run the parallelization advisor on the daemon (served from its      warm caches when possible). Same output as the local $(b,advise);      the report is bit-identical wherever it is computed.")
    Term.(
      const run $ client_endpoint_term $ retry_arg $ connect_timeout_ms_arg
      $ retry_policy_term $ deadline_ms_arg $ workload $ config_term $ json)

let client_simulate_cmd =
  let run endpoint retry connect_timeout policy deadline_ms workload =
    client_request endpoint retry connect_timeout policy deadline_ms
      (Protocol.Simulate { workload })
      (function
      | Protocol.Simulated s ->
          Format.printf
            "%s: %d instructions, %d syscalls, output %d bytes, %d words \
             touched, %d trace events@."
            workload s.Protocol.instructions s.syscalls s.output_bytes
            s.memory_footprint s.trace_events
      | _ -> unexpected_response ())
  in
  let workload =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"WORKLOAD")
  in
  Cmd.v
    (Cmd.info "simulate"
       ~doc:"Ensure a workload's trace is resident on the daemon.")
    Term.(
      const run $ client_endpoint_term $ retry_arg $ connect_timeout_ms_arg
      $ retry_policy_term $ deadline_ms_arg $ workload)

let client_table_cmd =
  let run endpoint retry connect_timeout policy deadline_ms name =
    client_request endpoint retry connect_timeout policy deadline_ms
      (Protocol.Table { name })
      (function
      | Protocol.Rendered text -> print_string text
      | _ -> unexpected_response ())
  in
  let name_arg =
    let doc =
      Printf.sprintf "One of: %s." (String.concat ", " Server.table_names)
    in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"NAME" ~doc)
  in
  Cmd.v
    (Cmd.info "table" ~doc:"Render a paper table or figure on the daemon.")
    Term.(
      const run $ client_endpoint_term $ retry_arg $ connect_timeout_ms_arg
      $ retry_policy_term $ deadline_ms_arg $ name_arg)

let client_stats_cmd =
  let run endpoint retry connect_timeout policy json =
    client_request endpoint retry connect_timeout policy 0
      Protocol.Server_stats (function
      | Protocol.Telemetry c ->
          if json then
            print_endline
              (Ddg_report.Json.to_string
                 (Ddg_report.Json.Obj
                    [ ("uptime_s", Float c.Protocol.uptime_s);
                      ("connections", Int c.connections);
                      ("requests_total", Int c.requests_total);
                      ("requests_ok", Int c.requests_ok);
                      ("requests_error", Int c.requests_error);
                      ("busy_rejections", Int c.busy_rejections);
                      ("deadline_expirations", Int c.deadline_expirations);
                      ("latency_total_s", Float c.latency_total_s);
                      ("latency_max_s", Float c.latency_max_s);
                      ( "by_verb",
                        Obj
                          (List.map
                             (fun (verb, n) ->
                               (verb, Ddg_report.Json.Int n))
                             c.by_verb) );
                      ("simulations", Int c.simulations);
                      ("analyses", Int c.analyses);
                      ("trace_store_hits", Int c.trace_store_hits);
                      ("stats_store_hits", Int c.stats_store_hits);
                      ("trace_mem_hits", Int c.trace_mem_hits);
                      ("trace_evictions", Int c.trace_evictions);
                      ("trace_resident_bytes", Int c.trace_resident_bytes);
                      ("retries_served", Int c.retries_served);
                      ("worker_respawns", Int c.worker_respawns);
                      ("artifact_quarantines", Int c.artifact_quarantines);
                      ("injected_faults", Int c.injected_faults);
                      ("remote_fetches", Int c.remote_fetches) ]))
          else begin
            Format.printf "uptime: %.1fs, connections: %d@."
              c.Protocol.uptime_s c.connections;
            Format.printf
              "requests: %d total, %d ok, %d error (%d busy, %d deadline)@."
              c.requests_total c.requests_ok c.requests_error
              c.busy_rejections c.deadline_expirations;
            Format.printf "latency: %.1f ms mean, %.1f ms max@."
              (if c.requests_total = 0 then 0.0
               else 1000.0 *. c.latency_total_s /. float_of_int c.requests_total)
              (1000.0 *. c.latency_max_s);
            List.iter
              (fun (verb, n) -> Format.printf "  %-10s %d@." verb n)
              c.by_verb;
            Format.printf
              "work: %d simulations, %d analyses@." c.simulations c.analyses;
            Format.printf
              "caches: %d trace mem hits, %d trace store hits, %d stats \
               store hits@."
              c.trace_mem_hits c.trace_store_hits c.stats_store_hits;
            Format.printf "traces resident: %d bytes, %d evictions@."
              c.trace_resident_bytes c.trace_evictions;
            Format.printf
              "resilience: %d retries served, %d worker respawns, %d \
               artifacts quarantined, %d faults injected@."
              c.retries_served c.worker_respawns c.artifact_quarantines
              c.injected_faults;
            if c.remote_fetches > 0 then
              Format.printf "cluster: %d artifacts fetched from peers@."
                c.remote_fetches
          end
      | _ -> unexpected_response ())
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit machine-readable JSON.")
  in
  Cmd.v
    (Cmd.info "stats" ~doc:"Print the daemon's observability counters.")
    Term.(
      const run $ client_endpoint_term $ retry_arg $ connect_timeout_ms_arg
      $ retry_policy_term $ json)

let client_metrics_cmd =
  let snapshot_to_json (s : Obs.snapshot) =
    let open Ddg_report.Json in
    let labels ls = Obj (List.map (fun (k, v) -> (k, String v)) ls) in
    Obj
      [ ( "counters",
          List
            (List.map
               (fun (c : Obs.counter_snapshot) ->
                 Obj
                   [ ("name", String c.cs_name);
                     ("labels", labels c.cs_labels);
                     ("value", Int c.cs_value) ])
               s.counters) );
        ( "histograms",
          List
            (List.map
               (fun (h : Obs.hist_snapshot) ->
                 Obj
                   [ ("name", String h.hs_name);
                     ("labels", labels h.hs_labels);
                     ("count", Int h.hs_count);
                     ("sum", Int h.hs_sum);
                     ("min", Int h.hs_min);
                     ("max", Int h.hs_max);
                     ("mean", Float (Obs.hist_mean h));
                     ("p50", Int (Obs.quantile h 0.5));
                     ("p99", Int (Obs.quantile h 0.99)) ])
               s.histograms) ) ]
  in
  let run endpoint retry connect_timeout policy prom =
    client_request endpoint retry connect_timeout policy 0 Protocol.Metrics
      (function
      | Protocol.Metrics_snapshot s ->
          if prom then begin
            let text = Obs.prometheus_of_snapshot s in
            (* self-check: never emit exposition text a scraper's parser
               would choke on *)
            (match Obs.validate_exposition text with
            | Ok () -> ()
            | Error msg -> die "invalid Prometheus exposition: %s" msg);
            print_string text
          end
          else print_endline (Ddg_report.Json.to_string (snapshot_to_json s))
      | _ -> unexpected_response ())
  in
  let prom =
    Arg.(
      value & flag
      & info [ "prom" ]
          ~doc:
            "Emit Prometheus text exposition format (version 0.0.4) instead \
             of JSON.")
  in
  Cmd.v
    (Cmd.info "metrics"
       ~doc:
         "Dump the daemon's full metric registry (every counter and latency \
          histogram) as JSON, or as Prometheus text with $(b,--prom).")
    Term.(
      const run $ client_endpoint_term $ retry_arg $ connect_timeout_ms_arg
      $ retry_policy_term $ prom)

let client_fsck_cmd =
  let run endpoint retry connect_timeout policy deadline_ms =
    client_request endpoint retry connect_timeout policy deadline_ms
      Protocol.Fsck (function
      | Protocol.Fsck_report r ->
          Format.printf
            "scanned %d artifacts: %d valid, %d quarantined, %d missing, \
             %d temps swept@."
            r.Protocol.scanned r.valid r.quarantined r.missing r.swept_temps;
          if r.quarantined > 0 || r.missing > 0 then exit 1
      | _ -> unexpected_response ())
  in
  Cmd.v
    (Cmd.info "fsck"
       ~doc:
         "Run an artifact-store integrity check on the daemon (same scan      as the local $(b,paragraph fsck)). Exits 1 if anything was      quarantined or missing.")
    Term.(
      const run $ client_endpoint_term $ retry_arg $ connect_timeout_ms_arg
      $ retry_policy_term $ deadline_ms_arg)

let client_locate_cmd =
  let run endpoint retry connect_timeout policy deadline_ms key =
    client_request endpoint retry connect_timeout policy deadline_ms
      (Protocol.Locate { key })
      (function
      | Protocol.Located { node } -> print_endline node
      | _ -> unexpected_response ())
  in
  let key =
    let doc =
      "A routing key ($(i,workload/size), e.g. mtxx/default) or a full \
       artifact-store key; only its first two components route."
    in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"KEY" ~doc)
  in
  Cmd.v
    (Cmd.info "locate"
       ~doc:
         "Print which cluster node owns a key on the consistent-hash ring. \
          Works against the router or any cluster member; a standalone \
          daemon answers with an error.")
    Term.(
      const run $ client_endpoint_term $ retry_arg $ connect_timeout_ms_arg
      $ retry_policy_term $ deadline_ms_arg $ key)

let print_members members =
  if members = [] then print_endline "(empty fleet)"
  else
    List.iter
      (fun (node, endpoint) -> Printf.printf "%s %s\n" node endpoint)
      members

let client_join_cmd =
  let run endpoint retry connect_timeout policy deadline_ms node
      backend_endpoint =
    (match Server.endpoint_of_string backend_endpoint with
    | Some _ -> ()
    | None ->
        die "bad endpoint %S (want unix:<path> or tcp:<addr>:<port>)"
          backend_endpoint);
    client_request endpoint retry connect_timeout policy deadline_ms
      (Protocol.Join { node; endpoint = backend_endpoint })
      (function
      | Protocol.Members { members } -> print_members members
      | _ -> unexpected_response ())
  in
  let node =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"NODE" ~doc:"Ring node id for the joining backend.")
  in
  let backend_endpoint =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"ENDPOINT"
          ~doc:
            "The joining backend's endpoint: $(i,unix:PATH) or \
             $(i,tcp:ADDR:PORT). The daemon must already be listening \
             there.")
  in
  Cmd.v
    (Cmd.info "join"
       ~doc:
         "Add a running backend daemon to the cluster ring. The router \
          swaps the ring atomically and broadcasts the new membership; \
          keys move only to the joiner, which warms up via fetch-through \
          and scrub. Prints the membership now in force.")
    Term.(
      const run $ client_endpoint_term $ retry_arg $ connect_timeout_ms_arg
      $ retry_policy_term $ deadline_ms_arg $ node $ backend_endpoint)

let client_drain_cmd =
  let run endpoint retry connect_timeout policy deadline_ms node =
    client_request endpoint retry connect_timeout policy deadline_ms
      (Protocol.Decommission { node })
      (function
      | Protocol.Members { members } -> print_members members
      | _ -> unexpected_response ())
  in
  let node =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"NODE" ~doc:"Ring node id of the backend to retire.")
  in
  Cmd.v
    (Cmd.info "drain"
       ~doc:
         "Decommission a cluster backend: the router migrates its \
          artifacts to their new ring owners (digest-checked), swaps the \
          ring, broadcasts the new membership, and tells the node to \
          drain and exit. Prints the membership now in force.")
    Term.(
      const run $ client_endpoint_term $ retry_arg $ connect_timeout_ms_arg
      $ retry_policy_term $ deadline_ms_arg $ node)

let client_shutdown_cmd =
  let run endpoint retry connect_timeout =
    if connect_timeout < 0.0 then die "--connect-timeout-ms must be >= 0";
    (* shutdown is the one non-idempotent verb: no replay layer *)
    try
      Client.with_connection ~retry_for_s:retry
        ~connect_timeout_s:(connect_timeout /. 1000.0) endpoint (fun c ->
          match Client.request c Protocol.Shutdown with
          | Protocol.Shutting_down_ack -> print_endline "daemon shutting down"
          | _ -> unexpected_response ())
    with
    | Client.Server_error { code; message } ->
        prerr_endline
          (Printf.sprintf "paragraph: server error (%s): %s"
             (Protocol.error_code_name code) message);
        exit 3
    | Protocol.Error msg -> die "protocol error: %s" msg
    | End_of_file -> die "server closed the connection"
    | Unix.Unix_error (e, _, _) ->
        die "cannot reach daemon at %s: %s" (describe_endpoint endpoint)
          (Unix.error_message e)
  in
  Cmd.v
    (Cmd.info "shutdown" ~doc:"Ask the daemon to drain and exit.")
    Term.(const run $ client_endpoint_term $ retry_arg $ connect_timeout_ms_arg)

let client_cmd =
  let doc = "Talk to a running $(b,paragraph serve) daemon." in
  Cmd.group (Cmd.info "client" ~doc)
    [ client_ping_cmd;
      client_analyze_cmd;
      client_advise_cmd;
      client_simulate_cmd;
      client_table_cmd;
      client_stats_cmd;
      client_metrics_cmd;
      client_fsck_cmd;
      client_locate_cmd;
      client_join_cmd;
      client_drain_cmd;
      client_shutdown_cmd ]

let main =
  let doc =
    "Dynamic dependency graph analysis of ordinary programs (Austin & \
     Sohi, ISCA 1992)"
  in
  Cmd.group (Cmd.info "paragraph" ~version:Ddg_version.Version.current ~doc)
    [ analyze_cmd;
      advise_cmd;
      profile_cmd;
      ddg_cmd;
      run_cmd;
      chain_cmd;
      sharing_cmd;
      disasm_cmd;
      trace_cmd;
      workloads_cmd;
      paper_cmd "table2" "Regenerate Table 2 (benchmark inventory)."
        Ddg_experiments.Table2.render;
      paper_cmd "table3" "Regenerate Table 3 (dataflow results)."
        Ddg_experiments.Table3.render;
      paper_cmd "table4" "Regenerate Table 4 (renaming conditions)."
        Ddg_experiments.Table4.render;
      paper_cmd "fig7" "Regenerate Figure 7 (parallelism profiles)."
        Ddg_experiments.Fig7.render;
      paper_cmd "fig8" "Regenerate Figure 8 (window size vs parallelism)."
        Ddg_experiments.Fig8.render;
      fig7_csv_cmd;
      fig8_csv_cmd;
      fsck_cmd;
      serve_cmd;
      cluster_cmd;
      client_cmd ]

let () = exit (Cmd.eval main)
