(* Unit tests for the assembly parser and two-pass assembler. *)

open Ddg_asm

let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let assemble = Assembler.assemble_string

let test_parse_simple () =
  let lines = Parser.parse "main: li t0, 5\n  add t1, t0, t0 # comment\n" in
  check_int "three items" 3 (List.length lines);
  match lines with
  | [ { item = Ast.Label "main"; lineno = 1 };
      { item = Ast.Insn ("li", [ Ast.Reg 8; Ast.Int 5 ]); _ };
      { item = Ast.Insn ("add", [ Ast.Reg 9; Ast.Reg 8; Ast.Reg 8 ]); _ } ] ->
      ()
  | _ -> Alcotest.fail "unexpected parse"

let test_parse_indirect () =
  match Parser.parse "lw t0, 4(sp)\nsw t1, -8(fp)\nlw t2, (s0)" with
  | [ { item = Ast.Insn ("lw", [ Ast.Reg 8; Ast.Ind { offset = Ast.Ofs_int 4; base = 29 } ]); _ };
      { item = Ast.Insn ("sw", [ Ast.Reg 9; Ast.Ind { offset = Ast.Ofs_int (-8); base = 30 } ]); _ };
      { item = Ast.Insn ("lw", [ Ast.Reg 10; Ast.Ind { offset = Ast.Ofs_int 0; base = 16 } ]); _ } ] ->
      ()
  | _ -> Alcotest.fail "unexpected parse"

let test_parse_numbers () =
  match Parser.parse "li t0, 0x10\nli t1, -42\nfli f0, 1.5\nfli f1, 2e3\nfli f2, -0.25" with
  | [ { item = Ast.Insn ("li", [ _; Ast.Int 16 ]); _ };
      { item = Ast.Insn ("li", [ _; Ast.Int (-42) ]); _ };
      { item = Ast.Insn ("fli", [ _; Ast.Float 1.5 ]); _ };
      { item = Ast.Insn ("fli", [ _; Ast.Float 2000.0 ]); _ };
      { item = Ast.Insn ("fli", [ _; Ast.Float (-0.25) ]); _ } ] ->
      ()
  | _ -> Alcotest.fail "unexpected parse"

let test_parse_error_line () =
  match Parser.parse "nop\nli t0, $bogus\n" with
  | exception Parser.Error { lineno = 2; _ } -> ()
  | exception _ -> Alcotest.fail "wrong exception"
  | _ -> Alcotest.fail "expected parse error"

let test_assemble_labels () =
  let p = assemble {|
main:   li   t0, 3
loop:   addi t0, t0, -1
        bnez t0, loop
        halt
|} in
  check_int "four instructions" 4 (Array.length p.insns);
  check_int "entry at main" 0 p.entry;
  (match Program.find_symbol p "loop" with
  | Some 1 -> ()
  | _ -> Alcotest.fail "loop label");
  match p.insns.(2) with
  | Ddg_isa.Insn.Branch (Ne, 8, 0, 1) -> ()
  | i -> Alcotest.failf "bad branch: %s" (Ddg_isa.Insn.to_string i)

let test_assemble_data () =
  let p = assemble {|
        .data
A:      .word 1 2 3
PI:     .float 3.5
buf:    .space 10
after:  .word 7
        .text
main:   lw t0, A
        halt
|} in
  let base = Ddg_isa.Segment.data_base in
  (match Program.find_symbol p "A" with
  | Some a -> check_int "A at base" base a
  | None -> Alcotest.fail "A undefined");
  (match Program.find_symbol p "PI" with
  | Some a -> check_int "PI after 3 words" (base + 12) a
  | None -> Alcotest.fail "PI undefined");
  (* .space 10 is aligned up to 12 *)
  (match Program.find_symbol p "after" with
  | Some a -> check_int "after aligned space" (base + 12 + 4 + 12) a
  | None -> Alcotest.fail "after undefined");
  (match p.insns.(0) with
  | Ddg_isa.Insn.Lw (8, 0, a) -> check_int "absolute load" base a
  | i -> Alcotest.failf "bad load: %s" (Ddg_isa.Insn.to_string i));
  (* data image *)
  let words =
    List.filter_map
      (function addr, Program.Word w -> Some (addr, w) | _ -> None)
      p.data
  in
  check_int "four words" 4 (List.length words);
  check_int "A[1] value" 2 (List.assoc (base + 4) words)

let test_assemble_pseudo () =
  let p = assemble {|
main:   la   t0, main
        move t1, t0
        neg  t2, t1
        beqz t2, main
        halt
|} in
  (match p.insns.(0) with
  | Ddg_isa.Insn.Li (8, 0) -> ()
  | i -> Alcotest.failf "la: %s" (Ddg_isa.Insn.to_string i));
  (match p.insns.(1) with
  | Ddg_isa.Insn.Binop (Add, 9, 8, 0) -> ()
  | i -> Alcotest.failf "move: %s" (Ddg_isa.Insn.to_string i));
  match p.insns.(2) with
  | Ddg_isa.Insn.Binop (Sub, 10, 0, 9) -> ()
  | i -> Alcotest.failf "neg: %s" (Ddg_isa.Insn.to_string i)

let test_assemble_imm_alu () =
  let p = assemble "main: add t0, t1, 4\n sub t2, t0, -1\n halt" in
  match p.insns.(0), p.insns.(1) with
  | Ddg_isa.Insn.Binopi (Add, 8, 9, 4), Ddg_isa.Insn.Binopi (Sub, 10, 8, -1)
    ->
      ()
  | _ -> Alcotest.fail "immediate ALU forms"

let test_undefined_symbol () =
  match assemble "main: j nowhere\n" with
  | exception Assembler.Error { msg; _ } ->
      Alcotest.(check bool) "nonempty message" true (String.length msg > 0)
  | _ -> Alcotest.fail "expected error"

let test_duplicate_label () =
  match assemble "a: nop\na: nop\n" with
  | exception Assembler.Error { msg = _; lineno } -> check_int "line" 2 lineno
  | _ -> Alcotest.fail "expected error"

let test_insn_in_data () =
  match assemble ".data\nnop\n" with
  | exception Assembler.Error _ -> ()
  | _ -> Alcotest.fail "expected error"

let test_entry_defaults_to_zero () =
  let p = assemble "start: nop\n halt" in
  check_int "entry" 0 p.entry

let test_loc_directive () =
  let p = assemble {|
main:   .loc 10
        li t0, 1
        li t1, 2
        .loc 12
        add t2, t0, t1
        halt
|} in
  Alcotest.(check (option int)) "insn 0 line" (Some 10)
    (Program.source_line p 0);
  Alcotest.(check (option int)) "insn 1 line" (Some 10)
    (Program.source_line p 1);
  Alcotest.(check (option int)) "insn 2 line" (Some 12)
    (Program.source_line p 2);
  Alcotest.(check (option int)) "out of range" None
    (Program.source_line p 99)

let test_no_loc_means_unknown () =
  let p = assemble "main: nop\n halt" in
  Alcotest.(check (option int)) "unknown" None (Program.source_line p 0)

let test_disassembly_roundtrip () =
  (* pp must produce something for every instruction form *)
  let p = assemble {|
        .data
v:      .word 1
        .text
main:   li t0, 1
        fli f1, 2.5
        fadd f2, f1, f1
        fcmp.lt t1, f1, f2
        cvt.i2f f3, t0
        cvt.f2i t2, f3
        lw t3, v
        sw t3, 0(sp)
        flw f4, v
        fsw f4, 4(sp)
        jal main
        jr ra
        syscall
        nop
        halt
|} in
  let listing = Format.asprintf "%a" Program.pp p in
  Alcotest.(check bool) "nonempty listing" true (String.length listing > 100)

let tests =
  [ Alcotest.test_case "parse simple" `Quick test_parse_simple;
    Alcotest.test_case "parse indirect" `Quick test_parse_indirect;
    Alcotest.test_case "parse numbers" `Quick test_parse_numbers;
    Alcotest.test_case "parse error line" `Quick test_parse_error_line;
    Alcotest.test_case "labels and branches" `Quick test_assemble_labels;
    Alcotest.test_case "data directives" `Quick test_assemble_data;
    Alcotest.test_case "pseudo instructions" `Quick test_assemble_pseudo;
    Alcotest.test_case "immediate ALU" `Quick test_assemble_imm_alu;
    Alcotest.test_case "undefined symbol" `Quick test_undefined_symbol;
    Alcotest.test_case "duplicate label" `Quick test_duplicate_label;
    Alcotest.test_case "instruction in .data" `Quick test_insn_in_data;
    Alcotest.test_case "default entry" `Quick test_entry_defaults_to_zero;
    Alcotest.test_case ".loc directive" `Quick test_loc_directive;
    Alcotest.test_case "no .loc = unknown" `Quick test_no_loc_means_unknown;
    Alcotest.test_case "disassembly" `Quick test_disassembly_roundtrip ]
