(* Workload tests: every SPEC-analog program compiles, runs to completion,
   self-checks where a reference value exists, is deterministic, and the
   suite reproduces the paper's qualitative parallelism structure. *)

open Ddg_workloads
open Ddg_paragraph

let check_int = Alcotest.(check int)

let run_tiny w =
  let result, trace = Workload.trace w Workload.Tiny in
  (match result.Ddg_sim.Machine.stop with
  | Ddg_sim.Machine.Halted -> ()
  | s ->
      Alcotest.failf "%s did not halt: %a" w.Workload.name
        Ddg_sim.Machine.pp_stop_reason s);
  (result, trace)

let test_all_compile_and_halt () =
  List.iter
    (fun w ->
      let result, trace = run_tiny w in
      Alcotest.(check bool)
        (w.Workload.name ^ " produces output")
        true
        (String.length result.output > 0);
      Alcotest.(check bool)
        (w.Workload.name ^ " nonempty trace")
        true
        (Ddg_sim.Trace.length trace > 100);
      check_int
        (w.Workload.name ^ " trace length = instructions")
        result.instructions
        (Ddg_sim.Trace.length trace))
    Registry.all

let test_self_checks () =
  List.iter
    (fun w ->
      match w.Workload.self_check Workload.Tiny with
      | None -> ()
      | Some expected ->
          let result, _ = run_tiny w in
          Alcotest.(check string) (w.Workload.name ^ " self-check") expected
            result.output)
    Registry.all

let test_determinism () =
  List.iter
    (fun w ->
      let r1, _ = run_tiny w in
      let r2, _ = run_tiny w in
      check_int (w.Workload.name ^ " deterministic") r1.instructions
        r2.instructions;
      Alcotest.(check string)
        (w.Workload.name ^ " same output")
        r1.output r2.output)
    Registry.all

let test_every_workload_has_syscalls () =
  (* the conservative/optimistic distinction needs system calls *)
  List.iter
    (fun w ->
      let result, _ = run_tiny w in
      Alcotest.(check bool)
        (w.Workload.name ^ " has syscalls")
        true (result.syscalls > 0))
    Registry.all

let test_registry () =
  check_int "ten workloads" 10 (List.length Registry.all);
  Alcotest.(check bool) "find mtxx" true (Registry.find "mtxx" <> None);
  Alcotest.(check bool) "find bogus" true (Registry.find "nope" = None);
  (* names unique *)
  let sorted = List.sort_uniq compare Registry.names in
  check_int "unique names" 10 (List.length sorted)

(* --- paper-shape integration checks (default sizes; slow) ----------------- *)

let default_stats =
  (* computed lazily and shared across the slow tests *)
  lazy
    (List.map
       (fun w ->
         let _, trace = Workload.trace w Workload.Default in
         let an config = Analyzer.analyze config trace in
         ( w.Workload.name,
           ( an Config.default,
             an Config.dataflow,
             an Config.(with_renaming rename_none default),
             an Config.(with_renaming rename_registers_only default),
             an Config.(with_renaming rename_registers_stack default) ) ))
       Registry.all)

let parallelism name =
  let _, (cons, _, _, _, _) = List.find (fun (n, _) -> n = name) (Lazy.force default_stats) in
  cons.Analyzer.available_parallelism

let test_paper_ordering () =
  (* paper Table 3 ordering: xlisp lowest ... matrix300 highest *)
  let expected_order =
    [ "xlispx"; "cc1x"; "naskx"; "doducx"; "spicex"; "espx"; "eqnx"; "fpx";
      "tomcx"; "mtxx" ]
  in
  let values = List.map (fun n -> (n, parallelism n)) expected_order in
  let rec check_sorted = function
    | (n1, p1) :: ((n2, p2) :: _ as rest) ->
        if p1 >= p2 then
          Alcotest.failf "ordering violated: %s (%.1f) >= %s (%.1f)" n1 p1 n2
            p2;
        check_sorted rest
    | [ _ ] | [] -> ()
  in
  check_sorted values

let test_parallelism_bands () =
  (* paper: "ranging from 13 to 23,302 operations per cycle"; at our scaled
     trace lengths the band is narrower but the extremes must hold *)
  Alcotest.(check bool) "xlispx lowest band" true
    (parallelism "xlispx" > 5.0 && parallelism "xlispx" < 40.0);
  Alcotest.(check bool) "mtxx very high" true (parallelism "mtxx" > 1000.0);
  Alcotest.(check bool) "span at least 2 decades" true
    (parallelism "mtxx" /. parallelism "xlispx" > 100.0)

let test_renaming_shape () =
  (* Table 4 shape: no renaming collapses everything; registers recover
     most for scalar codes; the array codes need stack/memory renaming *)
  List.iter
    (fun (name, (cons, _, none, regs, regs_stack)) ->
      let full = cons.Analyzer.available_parallelism in
      let none = none.Analyzer.available_parallelism in
      let regs = regs.Analyzer.available_parallelism in
      let regs_stack = regs_stack.Analyzer.available_parallelism in
      Alcotest.(check bool) (name ^ ": no renaming collapses") true
        (none < 5.0);
      Alcotest.(check bool) (name ^ ": monotone") true
        (none <= regs +. 1e-9
        && regs <= regs_stack +. 1e-9
        && regs_stack <= full +. 1e-9))
    (Lazy.force default_stats);
  (* the array-heavy codes gain a lot beyond register renaming *)
  let gain name =
    let _, (cons, _, _, regs, _) =
      List.find (fun (n, _) -> n = name) (Lazy.force default_stats)
    in
    cons.Analyzer.available_parallelism /. regs.Analyzer.available_parallelism
  in
  Alcotest.(check bool) "mtxx needs memory renaming" true (gain "mtxx" > 3.0);
  Alcotest.(check bool) "tomcx needs memory renaming" true (gain "tomcx" > 5.0);
  Alcotest.(check bool) "fpx needs memory renaming" true (gain "fpx" > 2.0);
  (* the scalar integer codes do not *)
  Alcotest.(check bool) "eqnx fine with registers" true (gain "eqnx" < 1.5);
  Alcotest.(check bool) "naskx mostly fine with registers" true
    (gain "naskx" < 3.0)

let test_conservative_vs_optimistic () =
  (* Table 3: the conservative assumption never shows MORE parallelism,
     and the ordering of benchmarks is the same under both *)
  let pairs =
    List.map
      (fun (name, (cons, opt, _, _, _)) ->
        ( name,
          cons.Analyzer.available_parallelism,
          opt.Analyzer.available_parallelism ))
      (Lazy.force default_stats)
  in
  List.iter
    (fun (name, cons, opt) ->
      Alcotest.(check bool) (name ^ ": cons <= opt") true (cons <= opt +. 1e-9))
    pairs;
  (* the extremes are stable across the assumption: matrix300 stays the
     most parallel and xlisp stays among the least parallel (adjacent
     pairs may swap — their parallelism values are close, as in the
     paper's Table 3 where doduc and spice trade places between columns) *)
  let order_by f =
    List.map (fun (n, _, _) -> n)
      (List.sort (fun (_, a, b) (_, c, d) -> compare (f a b) (f c d)) pairs)
  in
  let cons_order = order_by (fun c _ -> c) in
  let opt_order = order_by (fun _ o -> o) in
  let top l = List.nth l 9 in
  let bottom2 l = [ List.nth l 0; List.nth l 1 ] in
  Alcotest.(check string) "same maximum" (top cons_order) (top opt_order);
  Alcotest.(check bool) "xlispx near the bottom under both" true
    (List.mem "xlispx" (bottom2 cons_order)
    && List.mem "xlispx" (bottom2 opt_order))

let test_window_shape () =
  (* Figure 8: growing the window monotonically exposes parallelism, and a
     few-hundred-instruction window already yields useful amounts *)
  let w = Option.get (Registry.find "eqnx") in
  let _, trace = Workload.trace w Workload.Default in
  let par ws =
    (Analyzer.analyze Config.(with_window ws default) trace)
      .Analyzer.available_parallelism
  in
  let p100 = par (Some 100) and p10k = par (Some 10_000) and pinf = par None in
  Alcotest.(check bool) "monotone" true (p100 <= p10k && p10k <= pinf);
  Alcotest.(check bool) "useful at W=100" true (p100 > 2.0);
  Alcotest.(check bool) "far from total at W=100" true (p100 < 0.1 *. pinf)

let tests =
  [ Alcotest.test_case "compile and halt (tiny)" `Quick
      test_all_compile_and_halt;
    Alcotest.test_case "self checks" `Quick test_self_checks;
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "syscalls present" `Quick
      test_every_workload_has_syscalls;
    Alcotest.test_case "registry" `Quick test_registry;
    Alcotest.test_case "paper ordering (default size)" `Slow
      test_paper_ordering;
    Alcotest.test_case "parallelism bands" `Slow test_parallelism_bands;
    Alcotest.test_case "renaming shape (Table 4)" `Slow test_renaming_shape;
    Alcotest.test_case "conservative vs optimistic (Table 3)" `Slow
      test_conservative_vs_optimistic;
    Alcotest.test_case "window shape (Figure 8)" `Slow test_window_shape ]
