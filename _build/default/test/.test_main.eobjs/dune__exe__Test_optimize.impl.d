test/test_optimize.ml: Alcotest Ast Ddg_minic Ddg_paragraph Ddg_sim Ddg_workloads Driver List Optimize Parser Printf String Tast Typecheck
