test/test_sim.ml: Alcotest Ddg_asm Ddg_isa Ddg_sim Filename Fun Machine Printf Sys Trace Trace_io Value
