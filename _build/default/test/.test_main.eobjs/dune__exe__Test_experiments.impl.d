test/test_experiments.ml: Ablation Alcotest Ddg_experiments Ddg_paragraph Ddg_workloads Extras Fig7 Fig8 Lazy List Option Runner String Table1 Table2 Table3 Table4
