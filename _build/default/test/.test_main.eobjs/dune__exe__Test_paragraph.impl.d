test/test_paragraph.ml: Alcotest Analyzer Array Buffer Config Ddg Ddg_asm Ddg_paragraph Ddg_sim Dist Fun List Machine Printf Profile String Two_pass
