test/test_report.ml: Alcotest Chart Csv Ddg_report Float Json List String Table
