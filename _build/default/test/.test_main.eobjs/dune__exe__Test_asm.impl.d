test/test_asm.ml: Alcotest Array Assembler Ast Ddg_asm Ddg_isa Format List Parser Program String
