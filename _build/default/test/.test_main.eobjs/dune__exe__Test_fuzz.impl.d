test/test_fuzz.ml: Array Ddg_minic Ddg_paragraph Ddg_sim Driver List Optimize Printf QCheck QCheck_alcotest String
