test/test_minic.ml: Alcotest Array Ast Ddg_asm Ddg_minic Ddg_sim Driver Fun Lexer List Parser String Typecheck
