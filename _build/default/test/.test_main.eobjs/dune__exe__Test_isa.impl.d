test/test_isa.ml: Alcotest Ddg_isa Insn List Loc Opclass Reg Segment
