test/test_workloads.ml: Alcotest Analyzer Config Ddg_paragraph Ddg_sim Ddg_workloads Lazy List Option Registry String Workload
