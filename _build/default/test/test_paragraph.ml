(* Unit tests for the Paragraph core, anchored on the paper's worked
   examples:
   - Figure 1 (true data dependencies only): S := A+B+C+D has critical
     path 4 and parallelism profile 4,2,1,1.
   - Figure 2 (register storage dependencies): the same computation with
     r0/r1 reused has critical path 6 and profile 2,1,2,1,1,1.
   - Figure 4 (resource dependencies): with two generic FUs no level holds
     more than two operations.
   - Section 3.2 special cases: pre-existing values, system-call
     firewalls, the instruction window. *)

open Ddg_paragraph
open Ddg_sim

let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))

let trace_of ?input src =
  let program = Ddg_asm.Assembler.assemble_string src in
  let result, trace = Machine.run_to_trace ?input program in
  (match result.stop with
  | Machine.Halted -> ()
  | s -> Alcotest.failf "program did not halt: %a" Machine.pp_stop_reason s);
  trace

(* The paper's Figure 1 program: S := A + B + C + D with no register
   reuse. *)
let figure1 = {|
        .data
A:      .word 1
B:      .word 2
C:      .word 3
D:      .word 4
S:      .word 0
        .text
main:   lw  t0, A
        lw  t1, B
        add t4, t0, t1
        lw  t2, C
        lw  t3, D
        add t5, t2, t3
        add t6, t4, t5
        sw  t6, S
        halt
|}

(* Figure 2: the same computation, but C and D reuse registers t0/t1. *)
let figure2 = {|
        .data
A:      .word 1
B:      .word 2
C:      .word 3
D:      .word 4
S:      .word 0
        .text
main:   lw  t0, A
        lw  t1, B
        add t4, t0, t1
        lw  t0, C
        lw  t1, D
        add t5, t0, t1
        add t6, t4, t5
        sw  t6, S
        halt
|}

let profile_list stats n =
  (* first [n] levels of an unbucketed profile *)
  Alcotest.(check int) "width 1" 1 (Profile.bucket_width stats.Analyzer.profile);
  List.map
    (fun (_, _, avg) -> int_of_float avg)
    (List.filteri (fun i _ -> i < n) (Profile.series stats.Analyzer.profile))

let test_figure1 () =
  let stats = Analyzer.analyze Config.default (trace_of figure1) in
  check_int "critical path" 4 stats.critical_path;
  check_int "placed ops" 8 stats.placed_ops;
  Alcotest.(check (list int)) "profile" [ 4; 2; 1; 1 ] (profile_list stats 4);
  check_float "parallelism" 2.0 stats.available_parallelism

let test_figure2_renamed () =
  (* with renaming, register reuse is invisible: same DDG as figure 1 *)
  let stats = Analyzer.analyze Config.default (trace_of figure2) in
  check_int "critical path" 4 stats.critical_path;
  Alcotest.(check (list int)) "profile" [ 4; 2; 1; 1 ] (profile_list stats 4)

let test_figure2_storage_deps () =
  let config = Config.(with_renaming rename_none default) in
  let stats = Analyzer.analyze config (trace_of figure2) in
  check_int "critical path" 6 stats.critical_path;
  check_int "placed ops" 8 stats.placed_ops;
  Alcotest.(check (list int)) "profile" [ 2; 1; 2; 1; 1; 1 ]
    (profile_list stats 6)

let test_figure1_no_renaming_unchanged () =
  (* figure 1 reuses no location, so disabling renaming changes nothing *)
  let config = Config.(with_renaming rename_none default) in
  let stats = Analyzer.analyze config (trace_of figure1) in
  check_int "critical path" 4 stats.critical_path

let test_figure4_resources () =
  let fu = { Config.unlimited_fu with total = Some 2 } in
  let config = Config.(with_fu fu default) in
  let ddg = Ddg.build config (trace_of figure1) in
  check_int "all ops placed" 8 (Array.length (Ddg.nodes ddg));
  Array.iter
    (fun per_level ->
      Alcotest.(check bool) "at most 2 ops per level" true (per_level <= 2))
    (Ddg.ops_per_level ddg);
  Alcotest.(check bool) "critical path at least ceil(8/2)" true
    (Ddg.critical_path ddg >= 4);
  Alcotest.(check bool) "resources can only deepen" true
    (Ddg.critical_path ddg >= 4)

(* --- explicit DDG ------------------------------------------------------- *)

let test_ddg_matches_analyzer_fig1 () =
  let trace = trace_of figure1 in
  let stats = Analyzer.analyze Config.default trace in
  let ddg = Ddg.build Config.default trace in
  check_int "critical path" stats.critical_path (Ddg.critical_path ddg);
  Alcotest.(check (array int)) "profile" [| 4; 2; 1; 1 |] (Ddg.ops_per_level ddg)

let test_ddg_edges_fig1 () =
  let ddg = Ddg.build Config.default (trace_of figure1) in
  (* 7 true-data edges: t0->t4, t1->t4, t2->t5, t3->t5, t4->t6, t5->t6,
     t6->store *)
  let data_edges =
    List.filter (fun e -> e.Ddg.kind = Ddg.True_data) (Ddg.edges ddg)
  in
  check_int "true data edges" 7 (List.length data_edges);
  check_int "no storage edges" 0
    (List.length (List.filter (fun e -> e.Ddg.kind = Ddg.Storage) (Ddg.edges ddg)))

let test_ddg_storage_edges_fig2 () =
  let config = Config.(with_renaming rename_none default) in
  let ddg = Ddg.build config (trace_of figure2) in
  let storage =
    List.filter (fun e -> e.Ddg.kind = Ddg.Storage) (Ddg.edges ddg)
  in
  (* t0 and t1 are each overwritten once with the old value in use *)
  Alcotest.(check bool) "storage edges present" true (List.length storage >= 2)

let test_ddg_dot () =
  let ddg = Ddg.build Config.default (trace_of figure1) in
  let dot = Ddg.to_dot ddg in
  Alcotest.(check bool) "digraph" true
    (String.length dot > 50 && String.sub dot 0 7 = "digraph")

(* --- system calls -------------------------------------------------------- *)

let syscall_program = {|
main:   li t0, 1
        li t1, 2
        add t2, t0, t1     # level 1
        li v0, 1
        move a0, t2
        syscall            # firewall
        li t3, 5           # independent, but held below the firewall
        halt
|}

let test_syscall_conservative () =
  let stats = Analyzer.analyze Config.default (trace_of syscall_program) in
  check_int "one syscall" 1 stats.syscalls;
  (* conservative: li t3 placed after the firewall, deepening the DDG *)
  let optimistic =
    Analyzer.analyze Config.dataflow (trace_of syscall_program)
  in
  Alcotest.(check bool) "conservative path at least as long" true
    (stats.critical_path >= optimistic.critical_path);
  (* optimistic ignores the syscall: one fewer placed op *)
  check_int "optimistic places one fewer op" (stats.placed_ops - 1)
    optimistic.placed_ops

let test_syscall_firewall_blocks () =
  (* an independent li after a syscall may not be placed at level 0 *)
  let trace = trace_of syscall_program in
  let ddg = Ddg.build Config.default trace in
  let nodes = Ddg.nodes ddg in
  let last_li =
    (* the final value-creating node (li t3) *)
    nodes.(Array.length nodes - 1)
  in
  Alcotest.(check bool) "li t3 below firewall" true (last_li.Ddg.level > 0);
  (* under optimistic syscalls it sits at level 0 *)
  let ddg_opt = Ddg.build Config.dataflow trace in
  let nodes_opt = Ddg.nodes ddg_opt in
  let last_opt = nodes_opt.(Array.length nodes_opt - 1) in
  check_int "li t3 at top without firewall" 0 last_opt.Ddg.level

(* --- pre-existing values ------------------------------------------------- *)

let test_preexisting_values () =
  (* a load from the DATA segment must land in the topologically highest
     level: pre-existing values never delay computation *)
  let stats = Analyzer.analyze Config.default (trace_of {|
        .data
X:      .word 42
        .text
main:   lw t0, X
        halt
|}) in
  check_int "one op" 1 stats.placed_ops;
  check_int "critical path" 1 stats.critical_path

let test_preexisting_sp () =
  (* sp is pre-initialised: using it does not delay the first level *)
  let stats = Analyzer.analyze Config.default (trace_of {|
main:   addi sp, sp, -8
        halt
|}) in
  check_int "critical path" 1 stats.critical_path

(* --- instruction window --------------------------------------------------- *)

let independent_lis n =
  (* n independent load-immediates + halt *)
  let buf = Buffer.create 256 in
  Buffer.add_string buf "main:\n";
  for i = 0 to n - 1 do
    Buffer.add_string buf (Printf.sprintf "  li t%d, %d\n" (i mod 4) i)
  done;
  Buffer.add_string buf "  halt\n";
  Buffer.contents buf

let test_window_limits_width () =
  let trace = trace_of (independent_lis 32) in
  let unbounded = Analyzer.analyze Config.default trace in
  (* all renaming on: 32 independent ops in one level *)
  check_int "unbounded critical path" 1 unbounded.critical_path;
  check_float "unbounded parallelism" 32.0 unbounded.available_parallelism;
  let w4 = Analyzer.analyze Config.(with_window (Some 4) default) trace in
  check_int "window 4 critical path" 8 w4.critical_path;
  check_float "window 4 parallelism" 4.0 w4.available_parallelism;
  let ddg = Ddg.build Config.(with_window (Some 4) default) trace in
  Array.iter
    (fun k -> Alcotest.(check bool) "level width <= 4" true (k <= 4))
    (Ddg.ops_per_level ddg)

let test_window_one_serialises () =
  let trace = trace_of (independent_lis 8) in
  let w1 = Analyzer.analyze Config.(with_window (Some 1) default) trace in
  check_int "window 1: fully serial" 8 w1.critical_path

let test_window_preserves_dataflow_order () =
  (* a dependent chain is unaffected by any window size *)
  let chain = {|
main:   li t0, 1
        add t0, t0, t0
        add t0, t0, t0
        add t0, t0, t0
        halt
|} in
  let trace = trace_of chain in
  let unbounded = Analyzer.analyze Config.default trace in
  let w2 = Analyzer.analyze Config.(with_window (Some 2) default) trace in
  check_int "chain unaffected" unbounded.critical_path w2.critical_path

(* --- latencies ------------------------------------------------------------ *)

let test_latencies_deepen () =
  (* a dependent chain of FP adds spans 6 levels per op (Table 1) *)
  let stats = Analyzer.analyze Config.default (trace_of {|
main:   fli f1, 1.0
        fadd f2, f1, f1
        fadd f3, f2, f2
        halt
|}) in
  (* fli is transport (1 level, completes at 0); each dependent fadd adds
     6 levels: 6, then 12 *)
  check_int "fp chain depth" 13 stats.critical_path

let test_custom_latency () =
  let config =
    { Config.default with latency = (fun _ -> 1) }
  in
  let stats = Analyzer.analyze config (trace_of {|
main:   fli f1, 1.0
        fadd f2, f1, f1
        fadd f3, f2, f2
        halt
|}) in
  check_int "unit latency chain" 3 stats.critical_path

(* --- value lifetimes and sharing ------------------------------------------- *)

let test_sharing_distribution () =
  let stats = Analyzer.analyze Config.default (trace_of {|
main:   li t0, 7          # used 3 times
        add t1, t0, t0
        add t2, t0, t1
        halt
|}) in
  (* t0 used 3x (twice by first add, once by second), t1 once, t2 never *)
  check_int "three computed values" 3 (Dist.count stats.sharing);
  check_int "total uses" 4 (Dist.total stats.sharing);
  check_int "max sharing" 3 (Dist.max_value stats.sharing)

let test_lifetime_distribution () =
  let stats = Analyzer.analyze Config.default (trace_of {|
main:   li t0, 7          # created at 0
        fli f1, 1.0
        fadd f2, f1, f1   # completes at 11
        add t1, t0, t0    # t0's last use, level 1
        add t2, t1, t1
        halt
|}) in
  Alcotest.(check bool) "t0 lifetime 1 recorded" true
    (Dist.count stats.lifetimes = 5);
  check_int "longest lifetime" 6 (Dist.max_value stats.lifetimes)

(* --- storage profile (section 2.3) ------------------------------------------ *)

let test_storage_profile () =
  (* li t0 (created 0, last use 1); add t1 (created 1, never used).
     Levels: 0 -> 1 live (t0), 1 -> 2 live (t0 until its use at 1, t1). *)
  let stats = Analyzer.analyze Config.default (trace_of {|
main:   li t0, 7
        add t1, t0, t0
        halt
|}) in
  let p = stats.storage_profile in
  check_int "two values" 2 (Dist.count stats.sharing);
  check_int "liveness mass" 3 (Profile.total_ops p);
  Alcotest.(check (list int)) "live per level" [ 1; 2 ]
    (List.map (fun (_, _, avg) -> int_of_float avg) (Profile.series p))

let test_storage_profile_long_lived () =
  (* a value used far below its creation keeps a location busy throughout *)
  let stats = Analyzer.analyze Config.default (trace_of {|
main:   li t0, 1
        fli f1, 2.0
        fadd f2, f1, f1
        fadd f3, f2, f2
        add t1, t0, t0     # t0 still live at level 1
        halt
|}) in
  Alcotest.(check bool) "storage spans deep levels" true
    (Profile.levels stats.storage_profile >= 12)

(* --- multiprocessor data sharing (section 2.3) ------------------------------- *)

let test_partition_sharing () =
  let ddg = Ddg.build Config.default (trace_of figure1) in
  (* one processor: everything internal *)
  let one = Ddg.partition_sharing ddg ~processors:1 ~scheme:`Contiguous in
  check_int "all internal" 7 one.internal_edges;
  check_int "no cross" 0 one.cross_edges;
  (* contiguous halves of the trace: loads+adds flow into the tail *)
  let two = Ddg.partition_sharing ddg ~processors:2 ~scheme:`Contiguous in
  check_int "edges conserved" 7 (two.internal_edges + two.cross_edges);
  Alcotest.(check bool) "some sharing across the halves" true
    (two.cross_edges > 0);
  check_int "node conservation" 8
    (Array.fold_left ( + ) 0 two.per_processor_nodes);
  (* round-robin scatters producers and consumers: at least as much
     sharing as contiguous for this chain-shaped graph *)
  let rr = Ddg.partition_sharing ddg ~processors:2 ~scheme:`Round_robin in
  Alcotest.(check bool) "round robin shares more" true
    (rr.cross_edges >= two.cross_edges)

let test_partition_sharing_rejects_zero () =
  let ddg = Ddg.build Config.default (trace_of figure1) in
  match Ddg.partition_sharing ddg ~processors:0 ~scheme:`Contiguous with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

(* --- two-pass mode (section 3.2, dead-value method 1) ------------------------ *)

let test_two_pass_matches_figure1 () =
  let trace = trace_of figure1 in
  let stats, peak = Two_pass.analyze Config.default trace in
  check_int "critical path" 4 stats.critical_path;
  check_int "placed" 8 stats.placed_ops;
  check_int "empty live well at end" 0 stats.live_locations;
  Alcotest.(check bool) "peak below total locations" true (peak <= 10)

let test_two_pass_annotations () =
  (* in "li t0; add t1, t0, t0; halt": the add's sources are t0's final
     references, and both destinations are final *)
  let trace = trace_of {|
main:   li t0, 7
        add t1, t0, t0
        halt
|} in
  let a = Two_pass.annotate trace in
  Alcotest.(check bool) "li dest not final (t0 read later)" false
    (Two_pass.final_dest a 0);
  Alcotest.(check bool) "add dest final" true (Two_pass.final_dest a 1);
  (* the same location twice: exactly one operand carries the flag *)
  let finals =
    List.length
      (List.filter Fun.id
         [ Two_pass.final_src a 1 0; Two_pass.final_src a 1 1 ])
  in
  check_int "one final flag for t0" 1 finals

(* --- branch-misprediction extension ----------------------------------------- *)

let branchy = {|
main:   li t0, 8
        li t1, 0
loop:   addi t1, t1, 1
        addi t0, t0, -1
        bnez t0, loop
        halt
|}

let test_branch_perfect_default () =
  let stats = Analyzer.analyze Config.default (trace_of branchy) in
  check_int "no mispredicts under perfect" 0 stats.mispredicts

let test_branch_mispredicts_deepen () =
  let trace = trace_of branchy in
  let perfect = Analyzer.analyze Config.default trace in
  let not_taken =
    Analyzer.analyze Config.(with_branch Predict_not_taken default) trace
  in
  Alcotest.(check bool) "mispredicts counted" true (not_taken.mispredicts >= 7);
  Alcotest.(check bool) "mispredicts deepen the DDG" true
    (not_taken.critical_path >= perfect.critical_path);
  let taken =
    Analyzer.analyze Config.(with_branch Predict_taken default) trace
  in
  Alcotest.(check bool) "predict-taken better here" true
    (taken.mispredicts < not_taken.mispredicts)

let test_two_bit_learns () =
  let trace = trace_of branchy in
  let two_bit =
    Analyzer.analyze Config.(with_branch (Two_bit 10) default) trace
  in
  (* loop branch taken 7 times then falls through: 2-bit counters
     mispredict at most the exit *)
  Alcotest.(check bool) "2-bit learns the loop" true (two_bit.mispredicts <= 2)

(* --- config describe -------------------------------------------------------- *)

let test_describe () =
  let s = Config.describe Config.default in
  Alcotest.(check bool) "mentions conservative" true
    (String.length s > 0 &&
     String.sub s 0 12 = "conservative")

let tests =
  [ Alcotest.test_case "figure 1: dataflow DDG" `Quick test_figure1;
    Alcotest.test_case "figure 2 renamed = figure 1" `Quick
      test_figure2_renamed;
    Alcotest.test_case "figure 2: storage deps" `Quick
      test_figure2_storage_deps;
    Alcotest.test_case "figure 1 unaffected by renaming" `Quick
      test_figure1_no_renaming_unchanged;
    Alcotest.test_case "figure 4: resource deps" `Quick test_figure4_resources;
    Alcotest.test_case "ddg matches analyzer" `Quick
      test_ddg_matches_analyzer_fig1;
    Alcotest.test_case "ddg edges (fig 1)" `Quick test_ddg_edges_fig1;
    Alcotest.test_case "ddg storage edges (fig 2)" `Quick
      test_ddg_storage_edges_fig2;
    Alcotest.test_case "ddg dot export" `Quick test_ddg_dot;
    Alcotest.test_case "syscall conservative vs optimistic" `Quick
      test_syscall_conservative;
    Alcotest.test_case "syscall firewall blocks" `Quick
      test_syscall_firewall_blocks;
    Alcotest.test_case "pre-existing data values" `Quick
      test_preexisting_values;
    Alcotest.test_case "pre-existing registers" `Quick test_preexisting_sp;
    Alcotest.test_case "window limits width" `Quick test_window_limits_width;
    Alcotest.test_case "window of one serialises" `Quick
      test_window_one_serialises;
    Alcotest.test_case "window keeps dataflow chains" `Quick
      test_window_preserves_dataflow_order;
    Alcotest.test_case "table 1 latencies deepen" `Quick test_latencies_deepen;
    Alcotest.test_case "custom latency table" `Quick test_custom_latency;
    Alcotest.test_case "sharing distribution" `Quick test_sharing_distribution;
    Alcotest.test_case "lifetime distribution" `Quick
      test_lifetime_distribution;
    Alcotest.test_case "partition sharing" `Quick test_partition_sharing;
    Alcotest.test_case "partition sharing rejects zero" `Quick
      test_partition_sharing_rejects_zero;
    Alcotest.test_case "two-pass matches figure 1" `Quick
      test_two_pass_matches_figure1;
    Alcotest.test_case "two-pass annotations" `Quick
      test_two_pass_annotations;
    Alcotest.test_case "storage profile" `Quick test_storage_profile;
    Alcotest.test_case "storage profile long-lived" `Quick
      test_storage_profile_long_lived;
    Alcotest.test_case "perfect branches by default" `Quick
      test_branch_perfect_default;
    Alcotest.test_case "mispredicts deepen" `Quick
      test_branch_mispredicts_deepen;
    Alcotest.test_case "2-bit predictor learns" `Quick test_two_bit_learns;
    Alcotest.test_case "config describe" `Quick test_describe ]
