(* Unit tests for the ISA library: operation classes and Table 1 latencies,
   location hashing/equality, segment classification, register naming and
   instruction defs/uses. *)

open Ddg_isa

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

(* --- Table 1 latencies ------------------------------------------------ *)

let test_table1_latencies () =
  check "int alu" 1 (Opclass.latency Int_alu);
  check "int mul" 6 (Opclass.latency Int_multiply);
  check "int div" 12 (Opclass.latency Int_divide);
  check "fp add" 6 (Opclass.latency Fp_add_sub);
  check "fp mul" 6 (Opclass.latency Fp_multiply);
  check "fp div" 12 (Opclass.latency Fp_divide);
  check "load/store" 1 (Opclass.latency Load_store);
  check "syscall" 1 (Opclass.latency Syscall)

let test_creates_value () =
  List.iter
    (fun c ->
      let expected = not (Opclass.equal c Opclass.Control) in
      check_bool (Opclass.to_string c) expected (Opclass.creates_value c))
    Opclass.all

(* --- Locations -------------------------------------------------------- *)

let test_loc_equal () =
  check_bool "reg eq" true (Loc.equal (Reg 3) (Reg 3));
  check_bool "reg ne" false (Loc.equal (Reg 3) (Reg 4));
  check_bool "reg vs freg" false (Loc.equal (Reg 3) (Freg 3));
  check_bool "mem eq" true (Loc.equal (Mem 0x1000) (Mem 0x1000));
  check_bool "mem vs reg" false (Loc.equal (Mem 3) (Reg 3))

let test_loc_hash_distinct () =
  (* registers and float registers must never collide *)
  for i = 0 to 31 do
    check_bool "reg/freg hash" true (Loc.hash (Reg i) <> Loc.hash (Freg i))
  done

let test_loc_pp () =
  check_str "reg" "r5" (Loc.to_string (Reg 5));
  check_str "freg" "f2" (Loc.to_string (Freg 2));
  check_str "mem" "[0x1000]" (Loc.to_string (Mem 0x1000))

(* --- Segments ---------------------------------------------------------- *)

let test_segments () =
  let seg a = Loc.segment_to_string (Segment.classify a) in
  check_str "data" "data" (seg Segment.data_base);
  check_str "data2" "data" (seg (Segment.heap_base - 4));
  check_str "heap" "heap" (seg Segment.heap_base);
  check_str "heap2" "heap" (seg (Segment.stack_limit - 4));
  check_str "stack" "stack" (seg Segment.stack_limit);
  check_str "stack top" "stack" (seg (Segment.stack_top - 4))

let test_storage_class () =
  let open Loc in
  Alcotest.(check bool)
    "reg class" true
    (Segment.storage_class_of_loc (Reg 4) = Register);
  Alcotest.(check bool)
    "freg class" true
    (Segment.storage_class_of_loc (Freg 4) = Register);
  Alcotest.(check bool)
    "stack class" true
    (Segment.storage_class_of_loc (Mem (Segment.stack_top - 8))
    = Stack_memory);
  Alcotest.(check bool)
    "data class" true
    (Segment.storage_class_of_loc (Mem Segment.data_base) = Data_memory);
  Alcotest.(check bool)
    "heap class is data" true
    (Segment.storage_class_of_loc (Mem Segment.heap_base) = Data_memory)

(* --- Registers --------------------------------------------------------- *)

let test_reg_names () =
  check_str "sp" "sp" (Reg.name Reg.sp);
  check_str "zero" "zero" (Reg.name Reg.zero);
  check_str "ra" "ra" (Reg.name Reg.ra);
  Alcotest.(check (option int)) "parse sp" (Some 29) (Reg.of_name "sp");
  Alcotest.(check (option int)) "parse r13" (Some 13) (Reg.of_name "r13");
  Alcotest.(check (option int)) "parse t0" (Some 8) (Reg.of_name "t0");
  Alcotest.(check (option int)) "parse bogus" None (Reg.of_name "r99");
  Alcotest.(check (option int)) "parse f5" (Some 5) (Reg.fof_name "f5");
  Alcotest.(check (option int)) "parse f33" None (Reg.fof_name "f33")

(* --- Instructions ------------------------------------------------------ *)

let test_insn_classes () =
  let open Insn in
  let cls i = Opclass.to_string (class_of i) in
  check_str "add" "Integer ALU" (cls (Binop (Add, 1, 2, 3)));
  check_str "mul" "Integer Multiply" (cls (Binop (Mul, 1, 2, 3)));
  check_str "div" "Integer Division" (cls (Binop (Div, 1, 2, 3)));
  check_str "rem" "Integer Division" (cls (Binopi (Rem, 1, 2, 3)));
  check_str "fadd" "Floating Point Add/Sub" (cls (Fbinop (Fadd, 1, 2, 3)));
  check_str "fmul" "Floating Point Multiply" (cls (Fbinop (Fmul, 1, 2, 3)));
  check_str "fdiv" "Floating Point Division" (cls (Fbinop (Fdiv, 1, 2, 3)));
  check_str "lw" "Load/Store" (cls (Lw (1, 2, 0)));
  check_str "sw" "Load/Store" (cls (Sw (1, 2, 0)));
  check_str "syscall" "System Calls" (cls Syscall);
  check_str "branch" "Control" (cls (Branch (Eq, 1, 2, 0)));
  check_str "halt" "Control" (cls Halt)

let loc_testable = Alcotest.testable Loc.pp Loc.equal

let test_insn_defs_uses () =
  let open Insn in
  Alcotest.(check (option loc_testable))
    "add defines rd" (Some (Loc.Reg 4))
    (defines (Binop (Add, 4, 5, 6)));
  Alcotest.(check (option loc_testable))
    "write to zero discarded" None
    (defines (Binop (Add, 0, 5, 6)));
  Alcotest.(check (option loc_testable))
    "store has no register def" None
    (defines (Sw (4, 29, 0)));
  Alcotest.(check (option loc_testable))
    "jal defines ra" (Some (Loc.Reg 31))
    (defines (Jal 0));
  Alcotest.(check (list loc_testable))
    "add uses" [ Loc.Reg 5; Loc.Reg 6 ]
    (register_uses (Binop (Add, 4, 5, 6)));
  Alcotest.(check (list loc_testable))
    "uses of zero omitted" [ Loc.Reg 6 ]
    (register_uses (Binop (Add, 4, 0, 6)));
  Alcotest.(check (list loc_testable))
    "store uses value and base" [ Loc.Reg 4; Loc.Reg 29 ]
    (register_uses (Sw (4, 29, 0)));
  Alcotest.(check (list loc_testable))
    "li uses nothing" []
    (register_uses (Li (4, 42)));
  Alcotest.(check (list loc_testable))
    "fsw uses freg and base" [ Loc.Freg 2; Loc.Reg 29 ]
    (register_uses (Fsw (2, 29, 8)))

let test_insn_pp () =
  let open Insn in
  check_str "pp add" "add a0, a1, a2" (to_string (Binop (Add, 4, 5, 6)));
  check_str "pp lw" "lw t0, 4(sp)" (to_string (Lw (8, 29, 4)));
  check_str "pp branch" "beq t0, t1, @12" (to_string (Branch (Eq, 8, 9, 12)));
  check_str "pp li" "li v0, 10" (to_string (Li (2, 10)))

let test_is_control () =
  let open Insn in
  check_bool "branch" true (is_control (Branch (Eq, 1, 2, 0)));
  check_bool "jr" true (is_control (Jr 31));
  check_bool "nop" true (is_control Nop);
  check_bool "add" false (is_control (Binop (Add, 1, 2, 3)));
  check_bool "syscall" false (is_control Syscall)

let tests =
  [ Alcotest.test_case "table 1 latencies" `Quick test_table1_latencies;
    Alcotest.test_case "creates_value" `Quick test_creates_value;
    Alcotest.test_case "loc equal" `Quick test_loc_equal;
    Alcotest.test_case "loc hash distinct" `Quick test_loc_hash_distinct;
    Alcotest.test_case "loc pp" `Quick test_loc_pp;
    Alcotest.test_case "segments" `Quick test_segments;
    Alcotest.test_case "storage class" `Quick test_storage_class;
    Alcotest.test_case "register names" `Quick test_reg_names;
    Alcotest.test_case "instruction classes" `Quick test_insn_classes;
    Alcotest.test_case "defs and uses" `Quick test_insn_defs_uses;
    Alcotest.test_case "instruction printing" `Quick test_insn_pp;
    Alcotest.test_case "is_control" `Quick test_is_control ]
