(* Optimizer tests: constant folding correctness, loop-unrolling
   semantics preservation (output equality at O0/O1/O2 on every
   workload), and the paper-relevant effect — unrolling shortens the
   loop-counter recurrence and raises available parallelism. *)

open Ddg_minic

let check_str = Alcotest.(check string)
let check_int = Alcotest.(check int)

let run_at opt src =
  let result = Driver.run ~opt ~max_instructions:20_000_000 src in
  (match result.stop with
  | Ddg_sim.Machine.Halted -> ()
  | s ->
      Alcotest.failf "did not halt at %s: %a"
        (match opt with Optimize.O0 -> "O0" | O1 -> "O1" | O2 -> "O2")
        Ddg_sim.Machine.pp_stop_reason s);
  result

(* --- folding ------------------------------------------------------------- *)

(* strip the SLine debug markers the typechecker interleaves *)
let strip_lines body =
  List.filter (function Tast.SLine _ -> false | _ -> true) body

let fold_of src =
  (* typecheck a one-expression program and fold the expression *)
  let p = Typecheck.check (Parser.parse ("void main() { print_int(" ^ src ^ "); }")) in
  match strip_lines (List.hd p.tfuncs).body with
  | [ Tast.SExpr { node = Tast.TBuiltin (_, [ e ]); _ } ] ->
      (Optimize.fold_expr e).node
  | _ -> Alcotest.fail "unexpected shape"

let test_fold_literals () =
  (match fold_of "2 + 3 * 4" with
  | Tast.TInt 14 -> ()
  | _ -> Alcotest.fail "arith");
  (match fold_of "(7 & 3) << 2" with
  | Tast.TInt 12 -> ()
  | _ -> Alcotest.fail "bitwise");
  (match fold_of "10 / 3 + 10 % 3" with
  | Tast.TInt 4 -> ()
  | _ -> Alcotest.fail "div mod");
  match fold_of "3 < 4" with
  | Tast.TInt 1 -> ()
  | _ -> Alcotest.fail "compare"

let test_fold_keeps_div_by_zero () =
  (* 1/0 must NOT fold away: the machine faults on it *)
  match fold_of "1 / 0" with
  | Tast.TBinop (Ast.Div, _, _) -> ()
  | _ -> Alcotest.fail "folded a trapping division"

let test_fold_identities () =
  let p =
    Typecheck.check
      (Parser.parse "void main() { int x = 5; print_int(x * 1 + 0); }")
  in
  match Optimize.program Optimize.O1 p with
  | { tfuncs = [ { body; _ } ]; _ } -> (
      match strip_lines body with
      | [ _; Tast.SExpr { node = Tast.TBuiltin (_, [ { node = Tast.TVar _; _ } ]); _ } ] ->
          ()
      | _ -> Alcotest.fail "x*1+0 did not reduce to x")
  | _ -> Alcotest.fail "unexpected shape"

let test_fold_dead_branches () =
  let p =
    Typecheck.check
      (Parser.parse
         "void main() { if (0) print_int(1); else print_int(2); while (0) print_int(3); }")
  in
  match Optimize.program Optimize.O1 p with
  | { tfuncs = [ { body; _ } ]; _ } -> (
      match strip_lines body with
      | [ Tast.SExpr _ ] -> ()
      | stripped ->
          Alcotest.failf "expected 1 statement, got %d" (List.length stripped))
  | _ -> Alcotest.fail "unexpected shape"

let test_fold_preserves_output () =
  let src = {|
void main() {
  int x = 3 * 4 + 1;
  float y = 2.0 * 0.5;
  print_int(x + 0);
  print_char(32);
  print_float(y * 1.0 + 0.0);
  print_char(10);
}
|} in
  check_str "same output" (run_at Optimize.O0 src).output
    (run_at Optimize.O1 src).output

(* --- unrolling ---------------------------------------------------------------- *)

let unroll_src = {|
int a[100];
void main() {
  int i;
  int s = 0;
  for (i = 0; i < 100; i = i + 1) {
    a[i] = i * 3;
  }
  for (i = 0; i < 99; i = i + 2) {   /* odd trip count: remainder loop */
    s = s + a[i];
  }
  print_int(s);
  print_char(10);
}
|}

let test_unroll_preserves_output () =
  check_str "O0 = O2" (run_at Optimize.O0 unroll_src).output
    (run_at Optimize.O2 unroll_src).output

let test_unroll_reduces_instructions () =
  (* fewer counter increments and loop branches execute *)
  let o0 = run_at Optimize.O0 unroll_src in
  let o2 = run_at Optimize.O2 unroll_src in
  Alcotest.(check bool) "fewer instructions" true
    (o2.instructions < o0.instructions)

let test_unroll_skips_counter_writers () =
  (* a loop that reassigns its counter inside the body must not unroll;
     output must be preserved *)
  let src = {|
void main() {
  int i;
  int n = 0;
  for (i = 0; i < 20; i = i + 1) {
    if (i == 5) i = 10;
    n = n + 1;
  }
  print_int(n);
}
|} in
  check_str "same output" (run_at Optimize.O0 src).output
    (run_at Optimize.O2 src).output

let test_unroll_nested () =
  let src = {|
int m[64];
void main() {
  int i;
  int j;
  int s = 0;
  for (i = 0; i < 8; i = i + 1) {
    for (j = 0; j < 8; j = j + 1) {
      m[i * 8 + j] = i * j;
    }
  }
  for (i = 0; i < 64; i = i + 1) s = s + m[i];
  print_int(s);
}
|} in
  check_str "nested same output" (run_at Optimize.O0 src).output
    (run_at Optimize.O2 src).output

let test_unroll_with_calls_and_reads () =
  let src = {|
int square(int x) { return x * x; }
void main() {
  int i;
  int s = 0;
  for (i = 1; i <= 10; i = i + 1) {
    s = s + square(i);
  }
  print_int(s);
}
|} in
  let o0 = run_at Optimize.O0 src and o2 = run_at Optimize.O2 src in
  check_str "calls preserved" o0.output o2.output;
  check_str "385" "385" o2.output

(* --- workload equivalence across levels ---------------------------------------- *)

let test_unroll_skips_loops_with_exits () =
  (* break/continue loops must not unroll, and output is preserved *)
  let src = {|
void main() {
  int i;
  int s = 0;
  for (i = 0; i < 40; i = i + 1) {
    if (i == 25) break;
    if (i % 3 == 0) continue;
    s = s + i;
  }
  print_int(s);
}
|} in
  check_str "same output with exits" (run_at Optimize.O0 src).output
    (run_at Optimize.O2 src).output

let test_workloads_agree_across_levels () =
  List.iter
    (fun (w : Ddg_workloads.Workload.t) ->
      let source = w.source Ddg_workloads.Workload.Tiny in
      let reference = (run_at Optimize.O0 source).output in
      check_str (w.name ^ " O1") reference (run_at Optimize.O1 source).output;
      check_str (w.name ^ " O2") reference (run_at Optimize.O2 source).output)
    Ddg_workloads.Registry.all

(* --- the paper's section 3.1 effect --------------------------------------------- *)

let test_unrolling_raises_parallelism () =
  (* a loop of independent iterations bound by the counter recurrence:
     unrolling shortens the recurrence, so available parallelism rises
     (the paper's "second order effect on the parallelism") *)
  let src = {|
int out[2048];
void main() {
  int i;
  for (i = 0; i < 2048; i = i + 1) {
    out[i] = (i * 40503) & 65535;
  }
  print_int(out[2047]);
}
|} in
  let parallelism opt =
    let program = Driver.compile ~opt src in
    let _, trace = Ddg_sim.Machine.run_to_trace program in
    (Ddg_paragraph.Analyzer.analyze Ddg_paragraph.Config.default trace)
      .Ddg_paragraph.Analyzer.available_parallelism
  in
  let p0 = parallelism Optimize.O0 and p2 = parallelism Optimize.O2 in
  Alcotest.(check bool)
    (Printf.sprintf "unrolling raises parallelism (%.2f -> %.2f)" p0 p2)
    true
    (p2 > p0 *. 1.5)

let test_o2_asm_has_remainder_loop () =
  let asm = Driver.emit_asm ~opt:Optimize.O2 unroll_src in
  (* two while loops in the source become four (each split into main +
     remainder); just check the listing grew *)
  let asm0 = Driver.emit_asm ~opt:Optimize.O0 unroll_src in
  check_int "more code at O2" 1
    (if String.length asm > String.length asm0 then 1 else 0)

let tests =
  [ Alcotest.test_case "fold literals" `Quick test_fold_literals;
    Alcotest.test_case "fold keeps div by zero" `Quick
      test_fold_keeps_div_by_zero;
    Alcotest.test_case "fold identities" `Quick test_fold_identities;
    Alcotest.test_case "fold dead branches" `Quick test_fold_dead_branches;
    Alcotest.test_case "fold preserves output" `Quick
      test_fold_preserves_output;
    Alcotest.test_case "unroll preserves output" `Quick
      test_unroll_preserves_output;
    Alcotest.test_case "unroll reduces instructions" `Quick
      test_unroll_reduces_instructions;
    Alcotest.test_case "unroll skips counter writers" `Quick
      test_unroll_skips_counter_writers;
    Alcotest.test_case "unroll skips loops with exits" `Quick
      test_unroll_skips_loops_with_exits;
    Alcotest.test_case "unroll nested loops" `Quick test_unroll_nested;
    Alcotest.test_case "unroll with calls" `Quick
      test_unroll_with_calls_and_reads;
    Alcotest.test_case "workloads agree across levels" `Quick
      test_workloads_agree_across_levels;
    Alcotest.test_case "unrolling raises parallelism (paper 3.1)" `Quick
      test_unrolling_raises_parallelism;
    Alcotest.test_case "O2 emits more code" `Quick
      test_o2_asm_has_remainder_loop ]
