(* Unit tests for the functional simulator: arithmetic semantics, memory,
   control flow, calls, syscalls, faults and trace-event contents. *)

open Ddg_sim

let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let run ?input ?max_instructions src =
  Machine.run ?input ?max_instructions (Ddg_asm.Assembler.assemble_string src)

let run_traced ?input src =
  Machine.run_to_trace ?input (Ddg_asm.Assembler.assemble_string src)

let output ?input src = (run ?input src).output

let expect_halt r =
  match r.Machine.stop with
  | Machine.Halted -> ()
  | s -> Alcotest.failf "expected halt, got %a" Machine.pp_stop_reason s

(* --- Arithmetic -------------------------------------------------------- *)

let test_arith () =
  let r = run {|
main:   li   t0, 21
        add  t1, t0, t0
        li   v0, 1
        move a0, t1
        syscall
        halt
|} in
  expect_halt r;
  check_str "21+21" "42" r.output

let test_arith_ops () =
  check_str "sub" "-7"
    (output "main: li t0, 5\n sub t1, t0, 12\n li v0, 1\n move a0, t1\n syscall\n halt");
  check_str "mul" "60"
    (output "main: li t0, 5\n mul t1, t0, 12\n li v0, 1\n move a0, t1\n syscall\n halt");
  check_str "div" "4"
    (output "main: li t0, 57\n div t1, t0, 12\n li v0, 1\n move a0, t1\n syscall\n halt");
  check_str "rem" "9"
    (output "main: li t0, 57\n rem t1, t0, 12\n li v0, 1\n move a0, t1\n syscall\n halt");
  check_str "and" "8"
    (output "main: li t0, 12\n and t1, t0, 10\n li v0, 1\n move a0, t1\n syscall\n halt");
  check_str "or" "14"
    (output "main: li t0, 12\n or t1, t0, 10\n li v0, 1\n move a0, t1\n syscall\n halt");
  check_str "xor" "6"
    (output "main: li t0, 12\n xor t1, t0, 10\n li v0, 1\n move a0, t1\n syscall\n halt");
  check_str "sll" "48"
    (output "main: li t0, 12\n sll t1, t0, 2\n li v0, 1\n move a0, t1\n syscall\n halt");
  check_str "sra" "-2"
    (output "main: li t0, -8\n sra t1, t0, 2\n li v0, 1\n move a0, t1\n syscall\n halt");
  check_str "slt" "1"
    (output "main: li t0, -8\n slt t1, t0, 0\n li v0, 1\n move a0, t1\n syscall\n halt")

let test_float_arith () =
  check_str "fp pipeline" "10.25"
    (output
       {|
main:   fli  f1, 2.5
        fli  f2, 1.5
        fadd f3, f1, f2     # 4.0
        fmul f4, f3, f1     # 10.0
        fli  f5, 0.25
        fadd f12, f4, f5    # 10.25
        li   v0, 2
        syscall
        halt
|})

let test_cvt () =
  check_str "i2f/f2i roundtrip" "7"
    (output
       {|
main:   li t0, 7
        cvt.i2f f1, t0
        cvt.f2i a0, f1
        li v0, 1
        syscall
        halt
|})

let test_fcmp () =
  check_str "fcmp lt" "1"
    (output
       {|
main:   fli f1, 1.0
        fli f2, 2.0
        fcmp.lt a0, f1, f2
        li v0, 1
        syscall
        halt
|})

(* --- Memory ------------------------------------------------------------ *)

let test_memory () =
  check_str "store/load" "99"
    (output
       {|
        .data
cell:   .word 0
        .text
main:   li t0, 99
        sw t0, cell
        lw a0, cell
        li v0, 1
        syscall
        halt
|})

let test_static_data () =
  check_str "initialised data" "123"
    (output
       {|
        .data
A:      .word 100 20 3
        .text
main:   lw t0, A
        la t3, A
        lw t1, 4(t3)
        lw t2, 8(t3)
        add a0, t0, t1
        add a0, a0, t2
        li v0, 1
        syscall
        halt
|})

let test_float_memory () =
  check_str "float data" "4.75"
    (output
       {|
        .data
X:      .float 1.25 3.5
        .text
main:   flw f1, X
        la  t0, X
        flw f2, 4(t0)
        fadd f12, f1, f2
        li v0, 2
        syscall
        halt
|})

let test_stack () =
  check_str "stack push/pop" "5"
    (output
       {|
main:   addi sp, sp, -8
        li t0, 5
        sw t0, 0(sp)
        lw a0, 0(sp)
        addi sp, sp, 8
        li v0, 1
        syscall
        halt
|})

(* --- Control flow ------------------------------------------------------ *)

let test_loop () =
  (* sum 1..10 = 55 *)
  check_str "loop sum" "55"
    (output
       {|
main:   li t0, 0          # sum
        li t1, 1          # i
        li t2, 10
loop:   add t0, t0, t1
        addi t1, t1, 1
        ble t1, t2, loop
done:   move a0, t0
        li v0, 1
        syscall
        halt
|})

let test_call () =
  check_str "function call" "30"
    (output
       {|
main:   li a0, 10
        li a1, 20
        jal addfn
        move a0, v0
        li v0, 1
        syscall
        halt
addfn:  add v0, a0, a1
        jr ra
|})

let test_recursion () =
  (* factorial 6 via the stack = 720 *)
  check_str "recursion" "720"
    (output
       {|
main:   li a0, 6
        jal fact
        move a0, v0
        li v0, 1
        syscall
        halt
fact:   bgtz a0, rec
        li v0, 1
        jr ra
rec:    addi sp, sp, -8
        sw ra, 0(sp)
        sw a0, 4(sp)
        addi a0, a0, -1
        jal fact
        lw a0, 4(sp)
        lw ra, 0(sp)
        addi sp, sp, 8
        mul v0, v0, a0
        jr ra
|})

(* --- Syscalls ----------------------------------------------------------- *)

let test_read_int () =
  check_str "read input" "12"
    (output ~input:[ Value.Int 7; Value.Int 5 ]
       {|
main:   li v0, 5
        syscall
        move t0, v0
        li v0, 5
        syscall
        add a0, t0, v0
        li v0, 1
        syscall
        halt
|})

let test_print_char () =
  check_str "print chars" "hi\n"
    (output
       {|
main:   li v0, 3
        li a0, 104
        syscall
        li a0, 105
        syscall
        li a0, 10
        syscall
        halt
|})

let test_sbrk () =
  let r = run {|
main:   li v0, 9
        li a0, 8
        syscall
        move t0, v0      # first block
        li v0, 9
        li a0, 8
        syscall
        sub a0, v0, t0   # distance = 8
        li v0, 1
        syscall
        halt
|} in
  expect_halt r;
  check_str "sbrk bump" "8" r.output

let test_exit_syscall () =
  let r = run "main: li v0, 10\n syscall\n nop\n" in
  expect_halt r;
  check_int "stops at exit" 2 r.instructions

let test_more_ops () =
  check_str "nor" "-15"
    (output "main: li t0, 12\n li t1, 2\n nor t2, t0, t1\n li v0, 1\n move a0, t2\n syscall\n halt");
  check_str "srl of negative is logical" "1073741822"
    (output
       "main: li t0, -8\n srl t1, t0, 2\n li v0, 1\n move a0, t1\n syscall\n halt");
  check_str "not pseudo" "-13"
    (output "main: li t0, 12\n not t1, t0\n li v0, 1\n move a0, t1\n syscall\n halt")

let test_jalr () =
  check_str "indirect call" "9"
    (output
       {|
main:   la t0, fn
        li a0, 4
        jalr t0
        move a0, v0
        li v0, 1
        syscall
        halt
fn:     addi v0, a0, 5
        jr ra
|})

let test_fneg_fsub () =
  check_str "fneg" "-2.5"
    (output
       "main: fli f1, 2.5\n fneg f12, f1\n li v0, 2\n syscall\n halt");
  check_str "fsub" "1.25"
    (output
       "main: fli f1, 3.75\n fli f2, 2.5\n fsub f12, f1, f2\n li v0, 2\n syscall\n halt")

let test_write_to_zero_discarded () =
  check_str "r0 stays zero" "0"
    (output
       "main: li zero, 42\n move a0, zero\n li v0, 1\n syscall\n halt")

let test_bad_jump_target () =
  match (run "main: li t0, 99999\n jr t0\n halt").stop with
  | Machine.Fault _ -> ()
  | _ -> Alcotest.fail "expected fault"

(* --- Faults and limits --------------------------------------------------- *)

let test_div_by_zero () =
  match (run "main: li t0, 1\n li t1, 0\n div t2, t0, t1\n halt").stop with
  | Machine.Fault _ -> ()
  | _ -> Alcotest.fail "expected fault"

let test_unaligned () =
  match (run "main: li t0, 3\n lw t1, 0(t0)\n halt").stop with
  | Machine.Fault _ -> ()
  | _ -> Alcotest.fail "expected fault"

let test_instruction_limit () =
  let r = run ~max_instructions:10 "main: j main\n" in
  (match r.stop with
  | Machine.Instruction_limit -> ()
  | s -> Alcotest.failf "expected limit, got %a" Machine.pp_stop_reason s);
  check_int "executed" 10 r.instructions

let test_fall_off_end_faults () =
  match (run "main: nop\n").stop with
  | Machine.Fault _ -> ()
  | _ -> Alcotest.fail "expected fault"

(* --- Trace events -------------------------------------------------------- *)

let test_trace_events () =
  let _, trace = run_traced {|
        .data
A:      .word 5
        .text
main:   lw t0, A
        addi t1, t0, 1
        sw t1, A
        beqz t1, main
        halt
|} in
  check_int "five events" 5 (Trace.length trace);
  let e0 = Trace.get trace 0 in
  (* lw t0, A : reads Mem A (base is zero reg, so no reg source) *)
  (match e0.srcs with
  | [ Ddg_isa.Loc.Mem a ] -> check_int "load addr" Ddg_isa.Segment.data_base a
  | _ -> Alcotest.fail "load srcs");
  (match e0.dest with
  | Some (Ddg_isa.Loc.Reg 8) -> ()
  | _ -> Alcotest.fail "load dest");
  let e2 = Trace.get trace 2 in
  (* sw t1, A : dest is the memory word, srcs are t1 *)
  (match e2.dest with
  | Some (Ddg_isa.Loc.Mem a) -> check_int "store addr" Ddg_isa.Segment.data_base a
  | _ -> Alcotest.fail "store dest");
  let e3 = Trace.get trace 3 in
  Alcotest.(check bool) "branch has outcome" true (e3.branch <> None);
  Alcotest.(check bool) "branch not taken" false
    (match e3.branch with Some { taken } -> taken | None -> true);
  Alcotest.(check bool) "branch creates no value" false
    (Trace.creates_value e3)

let test_trace_counts () =
  let r, trace = run_traced {|
main:   li t0, 3
loop:   addi t0, t0, -1
        bnez t0, loop
        halt
|} in
  check_int "trace length = executed" r.instructions (Trace.length trace);
  check_int "value creators" 4
    (Trace.count Trace.creates_value trace) (* li + 3x addi *)

(* --- trace file I/O -------------------------------------------------------- *)

let test_trace_io_roundtrip () =
  let _, trace = run_traced {|
        .data
A:      .word 5
        .text
main:   lw t0, A
        fli f1, 2.5
        fadd f2, f1, f1
        addi t1, t0, 1
        sw t1, A
        beqz t1, main
        li v0, 1
        move a0, t1
        syscall
        halt
|} in
  let path = Filename.temp_file "ddg_test" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Trace_io.write_file path trace;
      let back = Trace_io.read_file path in
      check_int "same length" (Trace.length trace) (Trace.length back);
      Trace.iteri
        (fun i e ->
          let e' = Trace.get back i in
          Alcotest.(check bool)
            (Printf.sprintf "event %d equal" i)
            true
            (e.Trace.pc = e'.Trace.pc
            && e.op_class = e'.op_class
            && e.dest = e'.dest && e.srcs = e'.srcs && e.branch = e'.branch))
        trace)

let test_trace_io_corrupt () =
  let path = Filename.temp_file "ddg_test" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out_bin path in
      output_string oc "NOTATRACE";
      close_out oc;
      match Trace_io.read_file path with
      | exception Trace_io.Corrupt _ -> ()
      | _ -> Alcotest.fail "expected Corrupt")

let test_trace_io_truncated () =
  let _, trace = run_traced "main: li t0, 1\n halt" in
  let path = Filename.temp_file "ddg_test" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Trace_io.write_file path trace;
      (* chop off the terminator *)
      let contents =
        let ic = open_in_bin path in
        let n = in_channel_length ic in
        let s = really_input_string ic (n - 1) in
        close_in ic;
        s
      in
      let oc = open_out_bin path in
      output_string oc contents;
      close_out oc;
      match Trace_io.read_file path with
      | exception Trace_io.Corrupt _ -> ()
      | _ -> Alcotest.fail "expected Corrupt")

let test_trace_io_streaming () =
  (* the streaming writer + fold reader agree with the in-memory path *)
  let program =
    Ddg_asm.Assembler.assemble_string
      "main: li t0, 5\nloop: addi t0, t0, -1\n bnez t0, loop\n halt"
  in
  let path = Filename.temp_file "ddg_test" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out_bin path in
      let emit, close = Trace_io.writer oc in
      let result = Machine.run ~on_event:emit program in
      close ();
      close_out oc;
      let ic = open_in_bin path in
      let count =
        Trace_io.fold_channel ic ~init:0 ~f:(fun acc _ -> acc + 1)
      in
      close_in ic;
      check_int "streamed all events" result.instructions count)

let test_determinism () =
  let src = {|
main:   li t0, 1000
loop:   addi t0, t0, -1
        bnez t0, loop
        halt
|} in
  let r1 = run src and r2 = run src in
  check_int "same count" r1.instructions r2.instructions;
  check_str "same output" r1.output r2.output

let tests =
  [ Alcotest.test_case "arith basic" `Quick test_arith;
    Alcotest.test_case "arith ops" `Quick test_arith_ops;
    Alcotest.test_case "float arith" `Quick test_float_arith;
    Alcotest.test_case "conversions" `Quick test_cvt;
    Alcotest.test_case "fcmp" `Quick test_fcmp;
    Alcotest.test_case "memory" `Quick test_memory;
    Alcotest.test_case "static data" `Quick test_static_data;
    Alcotest.test_case "float memory" `Quick test_float_memory;
    Alcotest.test_case "stack" `Quick test_stack;
    Alcotest.test_case "loop" `Quick test_loop;
    Alcotest.test_case "call" `Quick test_call;
    Alcotest.test_case "recursion" `Quick test_recursion;
    Alcotest.test_case "read int" `Quick test_read_int;
    Alcotest.test_case "print char" `Quick test_print_char;
    Alcotest.test_case "sbrk" `Quick test_sbrk;
    Alcotest.test_case "exit syscall" `Quick test_exit_syscall;
    Alcotest.test_case "more ops" `Quick test_more_ops;
    Alcotest.test_case "jalr" `Quick test_jalr;
    Alcotest.test_case "fneg/fsub" `Quick test_fneg_fsub;
    Alcotest.test_case "write to zero discarded" `Quick
      test_write_to_zero_discarded;
    Alcotest.test_case "bad jump target" `Quick test_bad_jump_target;
    Alcotest.test_case "div by zero" `Quick test_div_by_zero;
    Alcotest.test_case "unaligned" `Quick test_unaligned;
    Alcotest.test_case "instruction limit" `Quick test_instruction_limit;
    Alcotest.test_case "fall off end" `Quick test_fall_off_end_faults;
    Alcotest.test_case "trace events" `Quick test_trace_events;
    Alcotest.test_case "trace counts" `Quick test_trace_counts;
    Alcotest.test_case "trace io roundtrip" `Quick test_trace_io_roundtrip;
    Alcotest.test_case "trace io corrupt" `Quick test_trace_io_corrupt;
    Alcotest.test_case "trace io truncated" `Quick test_trace_io_truncated;
    Alcotest.test_case "trace io streaming" `Quick test_trace_io_streaming;
    Alcotest.test_case "determinism" `Quick test_determinism ]
