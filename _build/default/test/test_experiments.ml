(* Tests for the experiments layer: every table/figure renders on tiny
   workloads, the runner caches, and the CSV emitters produce well-formed
   series. *)

open Ddg_experiments

let runner = lazy (Runner.create ~size:Ddg_workloads.Workload.Tiny ())

let contains hay needle =
  let n = String.length needle and m = String.length hay in
  let rec go i = i + n <= m && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let test_table1 () =
  let out = Table1.render () in
  Alcotest.(check bool) "has classes" true (contains out "Integer Multiply");
  Alcotest.(check bool) "latency 12" true (contains out "12")

let test_table2 () =
  let out = Table2.render (Lazy.force runner) in
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " listed") true (contains out name))
    Ddg_workloads.Registry.names

let test_table3 () =
  let r = Lazy.force runner in
  let out = Table3.render r in
  Alcotest.(check bool) "has error column" true (contains out "Max Error");
  let rows = Table3.rows r in
  Alcotest.(check int) "ten rows" 10 (List.length rows);
  List.iter
    (fun (name, cons, opt) ->
      Alcotest.(check bool)
        (name ^ " cons <= opt")
        true
        (cons.Ddg_paragraph.Analyzer.available_parallelism
         <= opt.Ddg_paragraph.Analyzer.available_parallelism +. 1e-9))
    rows

let test_table4 () =
  let r = Lazy.force runner in
  let out = Table4.render r in
  Alcotest.(check bool) "has renaming columns" true
    (contains out "Regs/Stack Renamed");
  List.iter
    (fun (name, none, regs, regs_stack, all) ->
      Alcotest.(check bool) (name ^ " monotone") true
        (none <= regs +. 1e-9 && regs <= regs_stack +. 1e-9
        && regs_stack <= all +. 1e-9))
    (Table4.rows r)

let test_fig7 () =
  let r = Lazy.force runner in
  let w = Option.get (Ddg_workloads.Registry.find "mtxx") in
  let out = Fig7.render_one r w in
  Alcotest.(check bool) "chart rendered" true (contains out "operations");
  let csv = Fig7.csv r w in
  Alcotest.(check bool) "csv header" true
    (contains csv "level_lo,level_hi,ops_per_level");
  Alcotest.(check bool) "csv has rows" true
    (List.length (String.split_on_char '\n' csv) > 2)

let test_fig8 () =
  let r = Lazy.force runner in
  let series = Fig8.series r in
  Alcotest.(check int) "ten series" 10 (List.length series);
  List.iter
    (fun (name, points) ->
      Alcotest.(check int)
        (name ^ " one point per window")
        (List.length Fig8.window_sizes)
        (List.length points);
      (* percent of total is monotone in window size and capped at 100 *)
      let rec monotone = function
        | (_, a) :: ((_, b) :: _ as rest) ->
            if a > b +. 1e-6 then
              Alcotest.failf "%s: percent not monotone (%f > %f)" name a b;
            monotone rest
        | [ _ ] | [] -> ()
      in
      monotone points;
      List.iter
        (fun (_, pct) ->
          Alcotest.(check bool) (name ^ " pct bounded") true
            (pct >= 0.0 && pct <= 100.0 +. 1e-6))
        points)
    series

let test_extras () =
  let out = Extras.render (Lazy.force runner) in
  Alcotest.(check bool) "has sharing column" true (contains out "Sharing")

let test_ablations () =
  let r = Lazy.force runner in
  let fu = Ablation.render_resources r in
  Alcotest.(check bool) "has FU columns" true (contains fu "FU=2");
  let br = Ablation.render_branches r in
  Alcotest.(check bool) "has policies" true (contains br "not-taken")

let test_fu_monotone () =
  (* more functional units never reduce parallelism *)
  let r = Lazy.force runner in
  let w = Option.get (Ddg_workloads.Registry.find "eqnx") in
  let parallelism k =
    let fu = { Ddg_paragraph.Config.unlimited_fu with total = Some k } in
    (Runner.analyze r w Ddg_paragraph.Config.(with_fu fu default))
      .Ddg_paragraph.Analyzer.available_parallelism
  in
  let p1 = parallelism 1 and p4 = parallelism 4 and p64 = parallelism 64 in
  Alcotest.(check bool) "monotone in units" true (p1 <= p4 && p4 <= p64);
  Alcotest.(check bool) "one unit is nearly serial" true (p1 <= 1.0 +. 1e-9)

let tests =
  [ Alcotest.test_case "table 1 renders" `Quick test_table1;
    Alcotest.test_case "table 2 renders" `Quick test_table2;
    Alcotest.test_case "table 3 renders" `Quick test_table3;
    Alcotest.test_case "table 4 renders" `Quick test_table4;
    Alcotest.test_case "figure 7 renders" `Quick test_fig7;
    Alcotest.test_case "figure 8 series" `Quick test_fig8;
    Alcotest.test_case "extras render" `Quick test_extras;
    Alcotest.test_case "ablations render" `Quick test_ablations;
    Alcotest.test_case "FU limits monotone" `Quick test_fu_monotone ]
