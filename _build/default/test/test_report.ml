(* Tests for the reporting library: table layout, number formatting, CSV
   escaping, chart rendering edge cases. *)

let check_str = Alcotest.(check string)

open Ddg_report

let test_int_cell () =
  check_str "small" "7" (Table.int_cell 7);
  check_str "thousands" "1,234" (Table.int_cell 1234);
  check_str "millions" "28,696,843,509" (Table.int_cell 28_696_843_509);
  check_str "negative" "-1,234" (Table.int_cell (-1234));
  check_str "zero" "0" (Table.int_cell 0)

let test_float_cell () =
  check_str "paper value" "23,302.60" (Table.float_cell 23302.6);
  check_str "small" "13.28" (Table.float_cell 13.28);
  check_str "decimals" "0.316" (Table.float_cell ~decimals:3 0.3164)

let test_table_render () =
  let out =
    Table.render
      ~headers:[ ("Name", Table.Left); ("Value", Table.Right) ]
      [ [ "a"; "1" ]; [ "bb"; "22" ] ]
  in
  let lines = String.split_on_char '\n' out in
  Alcotest.(check int) "four lines + trailing" 5 (List.length lines);
  check_str "header" "Name  Value" (List.nth lines 0);
  check_str "rule" "----  -----" (List.nth lines 1);
  check_str "row aligns right" "a         1" (List.nth lines 2)

let test_table_pads_short_rows () =
  let out =
    Table.render
      ~headers:[ ("A", Table.Left); ("B", Table.Left) ]
      [ [ "x" ] ]
  in
  Alcotest.(check bool) "renders" true (String.length out > 0)

let test_table_rejects_long_rows () =
  match
    Table.render ~headers:[ ("A", Table.Left) ] [ [ "x"; "y" ] ]
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

let test_csv_escaping () =
  check_str "plain" "a,b\n1,2\n"
    (Csv.to_string ~header:[ "a"; "b" ] [ [ "1"; "2" ] ]);
  check_str "comma quoted" "h\n\"a,b\"\n"
    (Csv.to_string ~header:[ "h" ] [ [ "a,b" ] ]);
  check_str "quote doubled" "h\n\"a\"\"b\"\n"
    (Csv.to_string ~header:[ "h" ] [ [ "a\"b" ] ])

let test_column_chart () =
  let chart =
    Chart.column_chart ~width:10 ~height:4
      [ (0.0, 1.0); (5.0, 4.0); (9.0, 2.0) ]
  in
  Alcotest.(check bool) "has bars" true (String.contains chart '#');
  Alcotest.(check bool) "has axis" true (String.contains chart '+');
  check_str "empty" "(empty profile)\n" (Chart.column_chart [])

let test_column_chart_log () =
  let chart =
    Chart.column_chart ~width:10 ~height:4 ~log_y:true
      [ (0.0, 1.0); (5.0, 10000.0) ]
  in
  Alcotest.(check bool) "log renders" true (String.contains chart '#')

let test_scatter () =
  let chart =
    Chart.log_log_scatter
      [ ("a", 'a', [ (1.0, 10.0); (100.0, 50.0) ]);
        ("b", 'b', [ (10.0, 5.0) ]) ]
  in
  Alcotest.(check bool) "has a" true (String.contains chart 'a');
  Alcotest.(check bool) "has b" true (String.contains chart 'b');
  Alcotest.(check bool) "has legend" true
    (String.length chart > 0
    &&
    let rec find i =
      i + 6 <= String.length chart
      && (String.sub chart i 6 = "legend" || find (i + 1))
    in
    find 0);
  check_str "empty" "(no points)\n" (Chart.log_log_scatter [])

let test_scatter_drops_nonpositive () =
  let chart =
    Chart.log_log_scatter [ ("a", 'a', [ (0.0, 5.0); (10.0, 10.0) ]) ]
  in
  Alcotest.(check bool) "renders" true (String.contains chart 'a')

let test_sparkline () =
  check_str "empty" "" (Chart.sparkline []);
  let s = Chart.sparkline [ 0.0; 1.0; 8.0 ] in
  Alcotest.(check int) "one char per value" 3 (String.length s);
  Alcotest.(check bool) "max is #" true (s.[2] = '#')

let test_json () =
  let open Json in
  check_str "minified"
    {|{"a":1,"b":[true,null,"x\"y"],"c":1.5}|}
    (to_string ~minify:true
       (Obj
          [ ("a", Int 1);
            ("b", List [ Bool true; Null; String "x\"y" ]);
            ("c", Float 1.5) ]));
  check_str "whole float keeps .0" "2.0" (to_string ~minify:true (Float 2.0));
  check_str "nan is null" "null" (to_string ~minify:true (Float Float.nan));
  check_str "empty obj" "{}" (to_string ~minify:true (Obj []));
  check_str "newline escaped" {|"a\nb"|}
    (to_string ~minify:true (String "a\nb"));
  (* pretty output parses back structurally: cheap sanity *)
  let pretty = to_string (Obj [ ("k", List [ Int 1; Int 2 ]) ]) in
  Alcotest.(check bool) "pretty has newlines" true
    (String.contains pretty '\n')

let tests =
  [ Alcotest.test_case "int cells" `Quick test_int_cell;
    Alcotest.test_case "float cells" `Quick test_float_cell;
    Alcotest.test_case "table render" `Quick test_table_render;
    Alcotest.test_case "table pads short rows" `Quick
      test_table_pads_short_rows;
    Alcotest.test_case "table rejects long rows" `Quick
      test_table_rejects_long_rows;
    Alcotest.test_case "csv escaping" `Quick test_csv_escaping;
    Alcotest.test_case "column chart" `Quick test_column_chart;
    Alcotest.test_case "column chart log" `Quick test_column_chart_log;
    Alcotest.test_case "scatter" `Quick test_scatter;
    Alcotest.test_case "scatter drops nonpositive" `Quick
      test_scatter_drops_nonpositive;
    Alcotest.test_case "sparkline" `Quick test_sparkline;
    Alcotest.test_case "json" `Quick test_json ]
