(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation (Tables 1-4, Figures 7-8), the section 2.3
   secondary analyses, two ablations (finite functional units; branch
   misprediction firewalls), and a set of Bechamel microbenchmarks of the
   tool itself.

   Usage: main.exe [--size tiny|default|large] [--only SECTION] [--no-micro]
   where SECTION is one of table1 table2 table3 table4 fig7 fig8 extras
   resources branches. *)

open Ddg_experiments

let parse_args () =
  let size = ref Ddg_workloads.Workload.Default in
  let only = ref None in
  let micro = ref true in
  let rec go = function
    | [] -> ()
    | "--size" :: s :: rest ->
        size :=
          (match s with
          | "tiny" -> Ddg_workloads.Workload.Tiny
          | "default" -> Ddg_workloads.Workload.Default
          | "large" -> Ddg_workloads.Workload.Large
          | _ -> failwith ("unknown size " ^ s));
        go rest
    | "--only" :: s :: rest ->
        only := Some s;
        go rest
    | "--no-micro" :: rest ->
        micro := false;
        go rest
    | arg :: _ -> failwith ("unknown argument " ^ arg)
  in
  go (List.tl (Array.to_list Sys.argv));
  (!size, !only, !micro)

let section_banner name =
  let bar = String.make 72 '=' in
  Printf.printf "\n%s\n%s\n%s\n\n" bar name bar

(* --- Bechamel microbenchmarks ------------------------------------------- *)

let microbenchmarks () =
  let open Bechamel in
  let open Toolkit in
  (* a small fixed trace for the analysis benchmarks *)
  let w = Option.get (Ddg_workloads.Registry.find "eqnx") in
  let _, trace = Ddg_workloads.Workload.trace w Ddg_workloads.Workload.Tiny in
  let events = Ddg_sim.Trace.length trace in
  let program =
    Ddg_workloads.Workload.program w Ddg_workloads.Workload.Tiny
  in
  let minic_source = w.Ddg_workloads.Workload.source Ddg_workloads.Workload.Tiny in
  let tests =
    [ Test.make ~name:"analyze trace (full renaming)"
        (Staged.stage (fun () ->
             ignore
               (Ddg_paragraph.Analyzer.analyze Ddg_paragraph.Config.default
                  trace)));
      Test.make ~name:"analyze trace (no renaming)"
        (Staged.stage (fun () ->
             ignore
               (Ddg_paragraph.Analyzer.analyze
                  Ddg_paragraph.Config.(
                    with_renaming rename_none default)
                  trace)));
      Test.make ~name:"analyze trace (window=100)"
        (Staged.stage (fun () ->
             ignore
               (Ddg_paragraph.Analyzer.analyze
                  Ddg_paragraph.Config.(with_window (Some 100) default)
                  trace)));
      Test.make ~name:"simulate program"
        (Staged.stage (fun () -> ignore (Ddg_sim.Machine.run program)));
      Test.make ~name:"compile Mini-C workload"
        (Staged.stage (fun () ->
             ignore (Ddg_minic.Driver.compile minic_source)));
      Test.make ~name:"explicit DDG build"
        (Staged.stage (fun () ->
             ignore
               (Ddg_paragraph.Ddg.build Ddg_paragraph.Config.default trace)))
    ]
  in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true
      ~compaction:false ()
  in
  let instances = Instance.[ monotonic_clock ] in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  Printf.printf
    "Microbenchmarks (eqnx tiny: %d trace events; ns per run):\n\n" events;
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let analyzed = Analyze.all ols (List.hd instances) results in
      Hashtbl.iter
        (fun name ols_result ->
          match Bechamel.Analyze.OLS.estimates ols_result with
          | Some [ est ] ->
              Printf.printf "  %-36s %14s ns/run  (%10.0f events/s)\n" name
                (Ddg_report.Table.float_cell est)
                (if est > 0.0 then float_of_int events /. (est /. 1e9)
                 else 0.0)
          | Some _ | None -> Printf.printf "  %-36s (no estimate)\n" name)
        analyzed)
    tests;
  print_newline ()

(* --- main ------------------------------------------------------------------ *)

let () =
  let size, only, micro = parse_args () in
  let t0 = Unix.gettimeofday () in
  let progress msg =
    Printf.eprintf "[%7.1fs] %s\n%!" (Unix.gettimeofday () -. t0) msg
  in
  let runner = Runner.create ~size ~progress () in
  (* fill the analysis cache in parallel: one job per (workload, switch
     combination) used by any section *)
  let all_configs =
    let open Ddg_paragraph.Config in
    [ default; dataflow ]
    @ List.map (fun r -> with_renaming r default)
        [ rename_none; rename_registers_only; rename_registers_stack ]
    @ List.map (fun w -> with_window (Some w) default) Fig8.window_sizes
    @ List.map
        (fun k -> with_fu { unlimited_fu with total = Some k } default)
        Ablation.fu_limits
    @ List.map (fun (_, p) -> with_branch p default)
        [ ("taken", Predict_taken); ("not-taken", Predict_not_taken);
          ("2bit", Two_bit 12) ]
  in
  let jobs =
    List.concat_map
      (fun w -> List.map (fun c -> (w, c)) all_configs)
      (Runner.workloads runner)
  in
  (match only with
  | Some ("table1" | "compiler") -> ()
  | _ -> Runner.prefetch runner jobs);
  let sections =
    [ ("table1", fun () -> Table1.render ());
      ("table2", fun () -> Table2.render runner);
      ("table3", fun () -> Table3.render runner);
      ("table4", fun () -> Table4.render runner);
      ("fig7", fun () -> Fig7.render runner);
      ("fig8", fun () -> Fig8.render runner);
      ("extras", fun () -> Extras.render runner);
      ("resources", fun () -> Ablation.render_resources runner);
      ("branches", fun () -> Ablation.render_branches runner);
      ("compiler", fun () -> Compiler_fx.render runner) ]
  in
  let wanted =
    match only with
    | None -> sections
    | Some name -> List.filter (fun (n, _) -> n = name) sections
  in
  if wanted = [] then failwith "no such section";
  Printf.printf
    "Dynamic Dependency Analysis of Ordinary Programs - evaluation \
     reproduction\n(Austin & Sohi, ISCA 1992; Mini-C SPEC'89 analogs, %s \
     size)\n"
    (Ddg_workloads.Workload.size_to_string size);
  List.iter
    (fun (name, render) ->
      section_banner name;
      print_string (render ());
      flush stdout)
    wanted;
  if micro && only = None then begin
    section_banner "microbenchmarks";
    microbenchmarks ()
  end;
  Printf.eprintf "[%7.1fs] done\n%!" (Unix.gettimeofday () -. t0)
