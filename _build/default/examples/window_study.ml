(* Window study: how many dynamic instructions must a processor see at
   once to expose a program's parallelism? (The paper's Figure 8
   question, for one program.)

       dune exec examples/window_study.exe [WORKLOAD]

   The paper's conclusion, visible here: window sizes of a few hundred
   instructions expose useful parallelism (roughly 10-50 operations per
   cycle), but the full dataflow parallelism of wide programs needs
   windows of tens or hundreds of thousands of instructions. *)

open Ddg_paragraph

let windows = [ 1; 4; 16; 64; 256; 1_024; 4_096; 16_384; 65_536; 262_144 ]

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "eqnx" in
  let workload =
    match Ddg_workloads.Registry.find name with
    | Some w -> w
    | None ->
        Format.eprintf "unknown workload %s; try one of: %s@." name
          (String.concat " " Ddg_workloads.Registry.names);
        exit 1
  in
  let _, trace =
    Ddg_workloads.Workload.trace workload Ddg_workloads.Workload.Default
  in
  let total =
    (Analyzer.analyze Config.default trace).available_parallelism
  in
  Format.printf "workload %s: unbounded-window parallelism %.2f@.@."
    workload.name total;
  let rows =
    List.map
      (fun w ->
        let stats =
          Analyzer.analyze Config.(with_window (Some w) default) trace
        in
        [ Ddg_report.Table.int_cell w;
          Ddg_report.Table.float_cell stats.available_parallelism;
          Printf.sprintf "%.2f%%"
            (100.0 *. stats.available_parallelism /. total) ])
      windows
  in
  print_string
    (Ddg_report.Table.render
       ~headers:
         [ ("Window size", Ddg_report.Table.Right);
           ("Parallelism", Ddg_report.Table.Right);
           ("% of total", Ddg_report.Table.Right) ]
       rows);
  print_newline ();
  let curve =
    List.map
      (fun w ->
        let stats =
          Analyzer.analyze Config.(with_window (Some w) default) trace
        in
        (float_of_int w, 100.0 *. stats.available_parallelism /. total))
      windows
  in
  print_string
    (Ddg_report.Chart.log_log_scatter
       ~x_label:"window size (instructions)"
       ~y_label:"percent of total parallelism"
       [ (workload.name, '*', curve) ])
