(* Throttling the DDG to a machine model.

       dune exec examples/machine_model.exe [WORKLOAD]

   The paper's section 2.3: "by placing suitable constraints on the
   execution order, or the resources available, we can throttle the DDG
   to match a particular machine model". This example stacks constraints
   the way a real superscalar design would: a finite instruction window,
   finite functional units, and a real branch predictor — and shows how
   far each step falls from the dataflow limit. *)

open Ddg_paragraph

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "doducx" in
  let workload =
    match Ddg_workloads.Registry.find name with
    | Some w -> w
    | None ->
        Format.eprintf "unknown workload %s; try one of: %s@." name
          (String.concat " " Ddg_workloads.Registry.names);
        exit 1
  in
  let _, trace =
    Ddg_workloads.Workload.trace workload Ddg_workloads.Workload.Default
  in
  let models =
    [ ("dataflow limit (renaming, no constraints)", Config.default);
      ( "+ 2048-instruction window",
        Config.(with_window (Some 2048) default) );
      ( "+ 8 functional units",
        Config.(
          with_fu
            { unlimited_fu with total = Some 8 }
            (with_window (Some 2048) default)) );
      ( "+ 2-bit branch prediction",
        Config.(
          with_branch (Two_bit 12)
            (with_fu
               { unlimited_fu with total = Some 8 }
               (with_window (Some 2048) default))) );
      ( "a near-term superscalar: window 64, 4 FUs, 2-bit prediction",
        Config.(
          with_branch (Two_bit 12)
            (with_fu
               { unlimited_fu with total = Some 4 }
               (with_window (Some 64) default))) ) ]
  in
  Format.printf "workload %s (%s analog)@.@." workload.name
    workload.spec_analog;
  let rows =
    List.map
      (fun (label, config) ->
        let stats = Analyzer.analyze config trace in
        [ label;
          Ddg_report.Table.float_cell stats.available_parallelism;
          Ddg_report.Table.int_cell stats.critical_path;
          Ddg_report.Table.int_cell stats.mispredicts ])
      models
  in
  print_string
    (Ddg_report.Table.render
       ~headers:
         [ ("Machine model", Ddg_report.Table.Left);
           ("Parallelism", Ddg_report.Table.Right);
           ("Critical path", Ddg_report.Table.Right);
           ("Mispredicts", Ddg_report.Table.Right) ]
       rows)
