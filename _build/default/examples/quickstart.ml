(* Quickstart: compile an ordinary program, trace it, and measure its
   dataflow parallelism.

       dune exec examples/quickstart.exe

   This walks the whole pipeline: Mini-C source -> compiled program ->
   serial execution trace -> Paragraph DDG analysis. *)

let source = {|
/* dot product of two 64-element vectors */
float a[64];
float b[64];

void main() {
  int i;
  float sum = 0.0;
  for (i = 0; i < 64; i = i + 1) {
    a[i] = float_of_int(i) * 0.5;
    b[i] = float_of_int(64 - i) * 0.25;
  }
  for (i = 0; i < 64; i = i + 1) {
    sum = sum + a[i] * b[i];
  }
  print_float(sum);
  print_char(10);
}
|}

let () =
  (* 1. compile Mini-C to the MIPS-like ISA *)
  let program = Ddg_minic.Driver.compile source in
  Format.printf "compiled: %d instructions, %d data items@."
    (Array.length program.insns)
    (List.length program.data);

  (* 2. execute on the simulator, collecting the serial trace *)
  let result, trace = Ddg_sim.Machine.run_to_trace program in
  Format.printf "executed: %d instructions, program printed %S@."
    result.instructions result.output;

  (* 3. analyze the trace: the pure dataflow limit *)
  let stats =
    Ddg_paragraph.Analyzer.analyze Ddg_paragraph.Config.dataflow trace
  in
  Format.printf "@.%a@.@." Ddg_paragraph.Analyzer.pp_stats stats;

  (* 4. the same trace through a 64-instruction window, as a superscalar
        processor would see it *)
  let windowed =
    Ddg_paragraph.Analyzer.analyze
      Ddg_paragraph.Config.(with_window (Some 64) dataflow)
      trace
  in
  Format.printf
    "with a 64-instruction window the parallelism drops from %.2f to %.2f@."
    stats.available_parallelism windowed.available_parallelism
