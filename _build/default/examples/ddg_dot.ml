(* The paper's worked examples as explicit DDGs.

       dune exec examples/ddg_dot.exe            # summary + Figure 1 DOT
       dune exec examples/ddg_dot.exe figure2    # storage-dependency DOT

   Reproduces Figures 1 and 2: S := A + B + C + D, first with distinct
   registers (true data dependencies only, critical path 4) and then with
   r0/r1 reused for C and D (register storage dependencies, critical
   path 6). Pipe the DOT output through `dot -Tpng` to draw the graphs. *)

open Ddg_paragraph

let figure1 = {|
        .data
A:      .word 1
B:      .word 2
C:      .word 3
D:      .word 4
S:      .word 0
        .text
main:   lw  t0, A
        lw  t1, B
        add t4, t0, t1
        lw  t2, C
        lw  t3, D
        add t5, t2, t3
        add t6, t4, t5
        sw  t6, S
        halt
|}

let figure2 = {|
        .data
A:      .word 1
B:      .word 2
C:      .word 3
D:      .word 4
S:      .word 0
        .text
main:   lw  t0, A
        lw  t1, B
        add t4, t0, t1
        lw  t0, C
        lw  t1, D
        add t5, t0, t1
        add t6, t4, t5
        sw  t6, S
        halt
|}

let build source config =
  let program = Ddg_asm.Assembler.assemble_string source in
  let _, trace = Ddg_sim.Machine.run_to_trace program in
  Ddg.build config trace

let summarise name ddg =
  Format.eprintf "%s: %d nodes, %d edges, critical path %d, parallelism %.2f@."
    name
    (Array.length (Ddg.nodes ddg))
    (List.length (Ddg.edges ddg))
    (Ddg.critical_path ddg)
    (Ddg.available_parallelism ddg);
  Format.eprintf "  ops per level: %s@."
    (String.concat " "
       (Array.to_list (Array.map string_of_int (Ddg.ops_per_level ddg))))

let () =
  let which = if Array.length Sys.argv > 1 then Sys.argv.(1) else "figure1" in
  let fig1 = build figure1 Config.default in
  let fig2 =
    build figure2 Config.(with_renaming rename_none default)
  in
  summarise "figure 1 (true data dependencies)" fig1;
  summarise "figure 2 (register storage dependencies)" fig2;
  match which with
  | "figure2" -> print_string (Ddg.to_dot fig2)
  | _ -> print_string (Ddg.to_dot fig1)
