(* Renaming study: how much parallelism does each kind of storage
   renaming expose? (The paper's Table 4 question, for one program.)

       dune exec examples/renaming_study.exe [WORKLOAD]

   Default workload: mtxx (the matrix300 analog), which the paper shows
   needs memory renaming — registers alone barely help because its values
   live in stack-allocated arrays. *)

open Ddg_paragraph

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "mtxx" in
  let workload =
    match Ddg_workloads.Registry.find name with
    | Some w -> w
    | None ->
        Format.eprintf "unknown workload %s; try one of: %s@." name
          (String.concat " " Ddg_workloads.Registry.names);
        exit 1
  in
  Format.printf "workload %s (%s analog): %s@.@." workload.name
    workload.spec_analog workload.description;
  let _, trace =
    Ddg_workloads.Workload.trace workload Ddg_workloads.Workload.Default
  in
  let conditions =
    [ ("no renaming", Config.rename_none);
      ("registers renamed", Config.rename_registers_only);
      ("registers + stack renamed", Config.rename_registers_stack);
      ("registers + memory renamed", Config.rename_all) ]
  in
  let rows =
    List.map
      (fun (label, renaming) ->
        let stats =
          Analyzer.analyze Config.(with_renaming renaming default) trace
        in
        [ label;
          Ddg_report.Table.int_cell stats.critical_path;
          Ddg_report.Table.float_cell stats.available_parallelism ])
      conditions
  in
  print_string
    (Ddg_report.Table.render
       ~headers:
         [ ("Renaming condition", Ddg_report.Table.Left);
           ("Critical path", Ddg_report.Table.Right);
           ("Available parallelism", Ddg_report.Table.Right) ]
       rows);
  print_newline ();
  print_endline
    "Reading the table: storage dependencies (WAR/WAW) from location reuse\n\
     serialise the DDG unless that class of storage is renamed. Compare the\n\
     register-only row with the full-renaming row to see where this\n\
     program's values live."
