examples/ddg_dot.ml: Array Config Ddg Ddg_asm Ddg_paragraph Ddg_sim Format List String Sys
