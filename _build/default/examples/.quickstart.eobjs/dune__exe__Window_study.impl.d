examples/window_study.ml: Analyzer Array Config Ddg_paragraph Ddg_report Ddg_workloads Format List Printf String Sys
