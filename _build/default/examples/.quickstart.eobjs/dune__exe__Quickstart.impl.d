examples/quickstart.ml: Array Ddg_minic Ddg_paragraph Ddg_sim Format List
