examples/ddg_dot.mli:
