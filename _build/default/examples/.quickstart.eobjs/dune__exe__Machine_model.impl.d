examples/machine_model.ml: Analyzer Array Config Ddg_paragraph Ddg_report Ddg_workloads Format List String Sys
