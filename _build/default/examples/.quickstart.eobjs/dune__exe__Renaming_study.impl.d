examples/renaming_study.ml: Analyzer Array Config Ddg_paragraph Ddg_report Ddg_workloads Format List String Sys
