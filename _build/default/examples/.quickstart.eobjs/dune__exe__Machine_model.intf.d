examples/machine_model.mli:
