examples/renaming_study.mli:
