examples/window_study.mli:
