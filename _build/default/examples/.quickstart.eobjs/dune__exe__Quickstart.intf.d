examples/quickstart.mli:
