open Ddg_paragraph

let window_sizes = [ 1; 10; 100; 1_000; 10_000; 100_000; 1_000_000 ]

let parallelism runner w config =
  (Runner.analyze runner w config).Analyzer.available_parallelism

let series runner =
  List.map
    (fun (w : Ddg_workloads.Workload.t) ->
      let total = parallelism runner w Config.default in
      let points =
        List.map
          (fun ws ->
            let p =
              parallelism runner w Config.(with_window (Some ws) default)
            in
            (ws, if total <= 0.0 then 0.0 else 100.0 *. p /. total))
          window_sizes
      in
      (w.name, points))
    (Runner.workloads runner)

let symbols = [| 'c'; 'd'; 'q'; 'e'; 'f'; 'm'; 'n'; 's'; 't'; 'x' |]

let render runner =
  let all = series runner in
  let chart_series =
    List.mapi
      (fun i (name, points) ->
        ( name,
          symbols.(i mod Array.length symbols),
          List.map (fun (w, pct) -> (float_of_int w, pct)) points ))
      all
  in
  let chart =
    Ddg_report.Chart.log_log_scatter ~x_label:"window size (instructions)"
      ~y_label:"percent of total available parallelism" chart_series
  in
  let table =
    Ddg_report.Table.render
      ~headers:
        (("Benchmark", Ddg_report.Table.Left)
        :: List.map
             (fun w -> (Printf.sprintf "W=%d" w, Ddg_report.Table.Right))
             window_sizes)
      (List.map
         (fun (name, points) ->
           name
           :: List.map (fun (_, pct) -> Printf.sprintf "%.2f%%" pct) points)
         all)
  in
  "Figure 8: Window Size vs Parallelism (percent of total exposed)\n\n"
  ^ chart ^ "\n" ^ table

let csv runner =
  let rows =
    List.concat_map
      (fun (w : Ddg_workloads.Workload.t) ->
        let total = parallelism runner w Config.default in
        List.map
          (fun ws ->
            let p =
              parallelism runner w Config.(with_window (Some ws) default)
            in
            [ w.name;
              string_of_int ws;
              Printf.sprintf "%.4f" p;
              Printf.sprintf "%.4f"
                (if total <= 0.0 then 0.0 else 100.0 *. p /. total) ])
          window_sizes)
      (Runner.workloads runner)
  in
  Ddg_report.Csv.to_string
    ~header:[ "benchmark"; "window"; "parallelism"; "percent_of_total" ]
    rows
