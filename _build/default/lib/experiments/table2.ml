open Ddg_report

let render runner =
  let rows =
    List.map
      (fun (w : Ddg_workloads.Workload.t) ->
        let result, trace = Runner.trace runner w in
        [ w.name;
          w.spec_analog;
          w.language_kind;
          Table.int_cell result.instructions;
          Table.int_cell (Ddg_sim.Trace.length trace);
          Table.int_cell result.syscalls ])
      (Runner.workloads runner)
  in
  Table.render
    ~title:
      (Printf.sprintf
         "Table 2: Benchmarks Analyzed (Mini-C SPEC'89 analogs, %s size)"
         (Ddg_workloads.Workload.size_to_string (Runner.size runner)))
    ~headers:
      [ ("Benchmark", Table.Left);
        ("SPEC Analog", Table.Left);
        ("Type", Table.Left);
        ("Instructions Executed", Table.Right);
        ("Instructions In Trace", Table.Right);
        ("System Calls", Table.Right) ]
    rows
