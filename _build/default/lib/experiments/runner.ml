open Ddg_workloads

type t = {
  size : Workload.size;
  progress : string -> unit;
  traces : (string, Ddg_sim.Machine.result * Ddg_sim.Trace.t) Hashtbl.t;
  stats : (string * string, Ddg_paragraph.Analyzer.stats) Hashtbl.t;
}

let create ?(size = Workload.Default) ?(progress = fun _ -> ()) () =
  { size; progress; traces = Hashtbl.create 16; stats = Hashtbl.create 64 }

let size t = t.size
let workloads _ = Registry.all

let trace t (w : Workload.t) =
  match Hashtbl.find_opt t.traces w.name with
  | Some cached -> cached
  | None ->
      t.progress (Printf.sprintf "tracing %s (%s)" w.name
           (Workload.size_to_string t.size));
      let result, tr = Workload.trace w t.size in
      (match result.stop with
      | Ddg_sim.Machine.Halted -> ()
      | s ->
          failwith
            (Format.asprintf "workload %s did not halt: %a" w.name
               Ddg_sim.Machine.pp_stop_reason s));
      Hashtbl.replace t.traces w.name (result, tr);
      (result, tr)

let analyze t (w : Workload.t) config =
  let key = (w.Workload.name, Ddg_paragraph.Config.describe config) in
  match Hashtbl.find_opt t.stats key with
  | Some cached -> cached
  | None ->
      let _, tr = trace t w in
      t.progress
        (Printf.sprintf "analyzing %s under %s" w.name (snd key));
      let stats = Ddg_paragraph.Analyzer.analyze config tr in
      Hashtbl.replace t.stats key stats;
      stats

(* Parallel cache fill: simulate any missing traces first (sequentially,
   so nothing is simulated twice), then run the independent analyses on a
   small domain pool. The caches are only written under the mutex; traces
   are read-only once simulated, so the worker domains can share them. *)
let prefetch t jobs =
  let jobs =
    List.filter
      (fun ((w : Workload.t), config) ->
        not
          (Hashtbl.mem t.stats
             (w.name, Ddg_paragraph.Config.describe config)))
      jobs
  in
  if jobs <> [] then begin
    List.iter (fun (w, _) -> ignore (trace t w)) jobs;
    let arr = Array.of_list jobs in
    let next = Atomic.make 0 in
    let mutex = Mutex.create () in
    let worker () =
      let rec go () =
        let i = Atomic.fetch_and_add next 1 in
        if i < Array.length arr then begin
          let (w : Workload.t), config = arr.(i) in
          let _, tr = Hashtbl.find t.traces w.name in
          let stats = Ddg_paragraph.Analyzer.analyze config tr in
          Mutex.lock mutex;
          Hashtbl.replace t.stats
            (w.name, Ddg_paragraph.Config.describe config)
            stats;
          t.progress
            (Printf.sprintf "analyzed %s under %s" w.name
               (Ddg_paragraph.Config.describe config));
          Mutex.unlock mutex;
          go ()
        end
      in
      go ()
    in
    let extra_domains =
      max 0 (min 7 (Domain.recommended_domain_count () - 1))
    in
    let domains = List.init extra_domains (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join domains
  end
