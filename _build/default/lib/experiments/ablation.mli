(** Ablations beyond the paper's headline experiments:

    - resource dependencies (paper Figure 4 generalised): available
      parallelism under finite numbers of generic functional units;
    - control dependencies (the paper's section 3.2 firewall extension):
      available parallelism when mispredicted branches stall the window,
      under static and 2-bit prediction. *)

val fu_limits : int list
(** 1, 2, 4, 8, 16, 64 generic units (plus unlimited as reference). *)

val render_resources : Runner.t -> string

val render_branches : Runner.t -> string
