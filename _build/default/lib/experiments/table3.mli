(** Paper Table 3: dataflow results — critical path length and available
    parallelism under the conservative and optimistic system-call
    assumptions (all renaming on, unbounded window, no resource limits),
    plus the maximum measurement error between the two. *)

val render : Runner.t -> string

val rows : Runner.t -> (string * Ddg_paragraph.Analyzer.stats * Ddg_paragraph.Analyzer.stats) list
(** [(name, conservative, optimistic)] per workload, for tests and CSV. *)
