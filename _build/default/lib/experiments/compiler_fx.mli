(** The compiler's second-order effect on parallelism (paper section 3.1:
    "the compiler can actually create a second order effect on the
    parallelism in the program. For instance, the MIPS compiler commonly
    performs loop unrolling which tends to decrease the recurrences
    created by loop counters, thus increasing the parallelism").

    Recompiles each workload at O0 (no optimisation), O1 (constant
    folding) and O2 (folding + 4-way loop unrolling) and measures the
    dataflow parallelism of each binary. The workload sources already
    contain the hand-unrolling a 1992 compiler would have done, so the
    O2 delta shows the effect on the loops that were left rolled. *)

val render : Runner.t -> string
