(** Paper Table 1: instruction-class operation times (an input of the
    analysis, printed for completeness). *)

val render : unit -> string
