(** The paper's section 2.3 secondary DDG analyses: value-lifetime and
    degree-of-sharing distributions, and live-well occupancy (the storage
    the abstract machine would need). *)

val render : Runner.t -> string
