open Ddg_paragraph
open Ddg_report

let rows runner =
  List.map
    (fun (w : Ddg_workloads.Workload.t) ->
      ( w.name,
        Runner.analyze runner w Config.default,
        Runner.analyze runner w Config.dataflow ))
    (Runner.workloads runner)

let render runner =
  let body =
    List.map
      (fun (name, (cons : Analyzer.stats), (opt : Analyzer.stats)) ->
        let error =
          if opt.available_parallelism <= 0.0 then 0.0
          else
            (opt.available_parallelism -. cons.available_parallelism)
            /. opt.available_parallelism
        in
        [ name;
          Table.int_cell cons.syscalls;
          Table.int_cell cons.critical_path;
          Table.float_cell cons.available_parallelism;
          Table.int_cell opt.critical_path;
          Table.float_cell opt.available_parallelism;
          Printf.sprintf "%.2f" error ])
      (rows runner)
  in
  Table.render
    ~title:
      "Table 3: Dataflow Results (conservative vs optimistic system calls)"
    ~headers:
      [ ("Benchmark", Table.Left);
        ("System Calls", Table.Right);
        ("Critical Path (cons)", Table.Right);
        ("Parallelism (cons)", Table.Right);
        ("Critical Path (opt)", Table.Right);
        ("Parallelism (opt)", Table.Right);
        ("Max Error", Table.Right) ]
    body
