(** Paper Figure 8: percent of total available parallelism exposed as a
    function of instruction-window size (log-log), under conservative
    system calls with full renaming. *)

val window_sizes : int list
(** The sweep: 1, 10, 100, 1k, 10k, 100k, 1M instructions. *)

val series : Runner.t -> (string * (int * float) list) list
(** Per workload: [(window, percent_of_total)] points. *)

val render : Runner.t -> string

val csv : Runner.t -> string
(** Columns: [benchmark,window,parallelism,percent_of_total]. *)
