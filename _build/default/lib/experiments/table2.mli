(** Paper Table 2: the benchmarks analyzed — our SPEC'89 analogs with
    their trace sizes at the runner's size class. *)

val render : Runner.t -> string
