open Ddg_paragraph
open Ddg_report

let fu_limits = [ 1; 2; 4; 8; 16; 64 ]

let render_resources runner =
  let rows =
    List.map
      (fun (w : Ddg_workloads.Workload.t) ->
        let unlimited =
          (Runner.analyze runner w Config.default)
            .Analyzer.available_parallelism
        in
        let limited k =
          let fu = { Config.unlimited_fu with total = Some k } in
          (Runner.analyze runner w Config.(with_fu fu default))
            .Analyzer.available_parallelism
        in
        (w.name :: List.map (fun k -> Table.float_cell (limited k)) fu_limits)
        @ [ Table.float_cell unlimited ])
      (Runner.workloads runner)
  in
  Table.render
    ~title:
      "Resource Dependencies (Figure 4 generalised): available parallelism \
       with k generic functional units"
    ~headers:
      (("Benchmark", Table.Left)
      :: List.map (fun k -> (Printf.sprintf "FU=%d" k, Table.Right)) fu_limits
      @ [ ("Unlimited", Table.Right) ])
    rows

let policies =
  [ ("perfect", Config.Perfect);
    ("taken", Config.Predict_taken);
    ("not-taken", Config.Predict_not_taken);
    ("2-bit", Config.Two_bit 12) ]

let render_branches runner =
  let rows =
    List.map
      (fun (w : Ddg_workloads.Workload.t) ->
        w.name
        :: List.concat_map
             (fun (_, policy) ->
               let stats =
                 Runner.analyze runner w Config.(with_branch policy default)
               in
               [ Table.float_cell stats.Analyzer.available_parallelism ])
             policies
        @ [ (let stats =
               Runner.analyze runner w
                 Config.(with_branch (Two_bit 12) default)
             in
             Table.int_cell stats.Analyzer.mispredicts) ])
      (Runner.workloads runner)
  in
  Table.render
    ~title:
      "Control Dependencies (section 3.2 firewall extension): available \
       parallelism when mispredicted branches stall fetch"
    ~headers:
      (("Benchmark", Table.Left)
      :: List.map (fun (name, _) -> (name, Table.Right)) policies
      @ [ ("2-bit mispredicts", Table.Right) ])
    rows
