open Ddg_report

let analyze_at runner (w : Ddg_workloads.Workload.t) opt =
  let source = w.source (Runner.size runner) in
  let program = Ddg_minic.Driver.compile ~opt source in
  let result, trace = Ddg_sim.Machine.run_to_trace program in
  (match result.stop with
  | Ddg_sim.Machine.Halted -> ()
  | s ->
      failwith
        (Format.asprintf "%s at %s: %a" w.name
           (match opt with
           | Ddg_minic.Optimize.O0 -> "O0"
           | O1 -> "O1"
           | O2 -> "O2")
           Ddg_sim.Machine.pp_stop_reason s));
  let stats =
    Ddg_paragraph.Analyzer.analyze Ddg_paragraph.Config.default trace
  in
  (result.instructions, stats.available_parallelism)

let render runner =
  let rows =
    List.map
      (fun (w : Ddg_workloads.Workload.t) ->
        let i0, p0 = analyze_at runner w Ddg_minic.Optimize.O0 in
        let i1, p1 = analyze_at runner w Ddg_minic.Optimize.O1 in
        let i2, p2 = analyze_at runner w Ddg_minic.Optimize.O2 in
        [ w.name;
          Table.int_cell i0;
          Table.float_cell p0;
          Table.int_cell i1;
          Table.float_cell p1;
          Table.int_cell i2;
          Table.float_cell p2;
          Printf.sprintf "%+.0f%%" (100.0 *. ((p2 /. p0) -. 1.0)) ])
      (Runner.workloads runner)
  in
  Table.render
    ~title:
      "Compiler Effects (section 3.1): dataflow parallelism of the same \
       source compiled at O0 / O1 (folding) / O2 (folding + 4-way \
       unrolling)"
    ~headers:
      [ ("Benchmark", Table.Left);
        ("O0 instrs", Table.Right);
        ("O0 par", Table.Right);
        ("O1 instrs", Table.Right);
        ("O1 par", Table.Right);
        ("O2 instrs", Table.Right);
        ("O2 par", Table.Right);
        ("O2/O0", Table.Right) ]
    rows
