(** Paper Figure 7: the parallelism profile of each benchmark —
    operations available per DDG level under conservative system calls
    with full renaming. Rendered as an ASCII column chart per benchmark;
    the raw series is also available as CSV rows. *)

val render : Runner.t -> string

val render_one : Runner.t -> Ddg_workloads.Workload.t -> string

val csv : Runner.t -> Ddg_workloads.Workload.t -> string
(** Columns: [level_lo,level_hi,ops_per_level]. *)
