open Ddg_paragraph
open Ddg_report

let render runner =
  let rows =
    List.map
      (fun (w : Ddg_workloads.Workload.t) ->
        let stats = Runner.analyze runner w Config.default in
        let _, trace = Runner.trace runner w in
        let _, peak_working_set = Two_pass.analyze Config.default trace in
        let lt = stats.Analyzer.lifetimes and sh = stats.Analyzer.sharing in
        [ w.name;
          Table.int_cell (Dist.count lt);
          Printf.sprintf "%.1f" (Dist.mean lt);
          Table.int_cell (Dist.quantile lt 0.9);
          Table.int_cell (Dist.max_value lt);
          Printf.sprintf "%.2f" (Dist.mean sh);
          Table.int_cell (Dist.max_value sh);
          Table.float_cell
            (Profile.average_parallelism stats.storage_profile);
          Table.float_cell
            (Profile.max_ops_per_level stats.storage_profile);
          Table.int_cell stats.live_locations;
          Table.int_cell peak_working_set ])
      (Runner.workloads runner)
  in
  Table.render
    ~title:
      "Value Lifetimes, Degree of Sharing and Storage Requirements \
       (section 2.3 analyses; lifetimes in DDG levels, sharing in uses \
       per computed value, storage in simultaneously live values; the \
       last column is the live-well working set under two-pass \
       dead-value elimination)"
    ~headers:
      [ ("Benchmark", Table.Left);
        ("Values", Table.Right);
        ("Life mean", Table.Right);
        ("Life p90", Table.Right);
        ("Life max", Table.Right);
        ("Sharing mean", Table.Right);
        ("Sharing max", Table.Right);
        ("Storage mean", Table.Right);
        ("Storage peak", Table.Right);
        ("Live locations", Table.Right);
        ("2-pass peak", Table.Right) ]
    rows
