(** Paper Table 4: available parallelism under the four renaming
    conditions — none, registers, registers+stack, registers+memory —
    with conservative system calls, unbounded window, no resource
    limits. *)

val render : Runner.t -> string

val rows : Runner.t -> (string * float * float * float * float) list
(** [(name, none, regs, regs_stack, regs_mem)] per workload. *)
