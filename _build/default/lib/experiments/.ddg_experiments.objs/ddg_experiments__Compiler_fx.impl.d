lib/experiments/compiler_fx.ml: Ddg_minic Ddg_paragraph Ddg_report Ddg_sim Ddg_workloads Format List Printf Runner Table
