lib/experiments/runner.mli: Ddg_paragraph Ddg_sim Ddg_workloads
