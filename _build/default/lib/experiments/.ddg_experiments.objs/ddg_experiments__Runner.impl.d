lib/experiments/runner.ml: Array Atomic Ddg_paragraph Ddg_sim Ddg_workloads Domain Format Hashtbl List Mutex Printf Registry Workload
