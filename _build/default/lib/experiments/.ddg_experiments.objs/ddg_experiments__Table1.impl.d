lib/experiments/table1.ml: Ddg_isa Ddg_report List
