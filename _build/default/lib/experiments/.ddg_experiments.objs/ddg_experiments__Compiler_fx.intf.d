lib/experiments/compiler_fx.mli: Runner
