lib/experiments/fig7.mli: Ddg_workloads Runner
