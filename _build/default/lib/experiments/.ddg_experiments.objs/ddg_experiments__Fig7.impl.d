lib/experiments/fig7.ml: Analyzer Config Ddg_paragraph Ddg_report Ddg_workloads List Printf Profile Runner String
