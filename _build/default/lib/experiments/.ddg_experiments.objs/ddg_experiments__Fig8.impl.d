lib/experiments/fig8.ml: Analyzer Array Config Ddg_paragraph Ddg_report Ddg_workloads List Printf Runner
