lib/experiments/table3.mli: Ddg_paragraph Runner
