lib/experiments/table2.ml: Ddg_report Ddg_sim Ddg_workloads List Printf Runner Table
