lib/experiments/ablation.ml: Analyzer Config Ddg_paragraph Ddg_report Ddg_workloads List Printf Runner Table
