lib/experiments/extras.ml: Analyzer Config Ddg_paragraph Ddg_report Ddg_workloads Dist List Printf Profile Runner Table Two_pass
