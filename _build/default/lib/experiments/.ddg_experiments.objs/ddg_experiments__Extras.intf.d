lib/experiments/extras.mli: Runner
