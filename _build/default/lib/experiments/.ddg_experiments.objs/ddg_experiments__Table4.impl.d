lib/experiments/table4.ml: Analyzer Config Ddg_paragraph Ddg_report Ddg_workloads List Runner Table
