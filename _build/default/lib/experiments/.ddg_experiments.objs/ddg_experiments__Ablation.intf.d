lib/experiments/ablation.mli: Runner
