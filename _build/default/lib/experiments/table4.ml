open Ddg_paragraph
open Ddg_report

let rows runner =
  List.map
    (fun (w : Ddg_workloads.Workload.t) ->
      let parallelism renaming =
        (Runner.analyze runner w Config.(with_renaming renaming default))
          .Analyzer.available_parallelism
      in
      ( w.name,
        parallelism Config.rename_none,
        parallelism Config.rename_registers_only,
        parallelism Config.rename_registers_stack,
        parallelism Config.rename_all ))
    (Runner.workloads runner)

let render runner =
  let body =
    List.map
      (fun (name, none, regs, regs_stack, regs_mem) ->
        [ name;
          Table.float_cell none;
          Table.float_cell regs;
          Table.float_cell regs_stack;
          Table.float_cell regs_mem ])
      (rows runner)
  in
  Table.render
    ~title:"Table 4: Available Parallelism under Different Renaming Conditions"
    ~headers:
      [ ("Benchmark", Table.Left);
        ("No Renaming", Table.Right);
        ("Regs Renamed", Table.Right);
        ("Regs/Stack Renamed", Table.Right);
        ("Reg/Mem Renamed", Table.Right) ]
    body
