open Ddg_paragraph

let profile runner w = (Runner.analyze runner w Config.default).Analyzer.profile

let points runner w =
  List.map
    (fun (lo, hi, avg) -> (float_of_int (lo + hi) /. 2.0, avg))
    (Profile.series (profile runner w))

let render_one runner (w : Ddg_workloads.Workload.t) =
  let profile = profile runner w in
  Printf.sprintf "%s Parallelism Profile (levels=%s, ops=%s, avg=%.2f)\n%s"
    w.name
    (Ddg_report.Table.int_cell (Profile.levels profile))
    (Ddg_report.Table.int_cell (Profile.total_ops profile))
    (Profile.average_parallelism profile)
    (Ddg_report.Chart.column_chart ~y_label:"operations available"
       ~log_y:true (points runner w))

let render runner =
  String.concat "\n"
    ("Figure 7: Parallelism Profiles for the SPEC-analog Benchmarks\n"
    :: List.map (render_one runner) (Runner.workloads runner))

let csv runner w =
  Ddg_report.Csv.to_string
    ~header:[ "level_lo"; "level_hi"; "ops_per_level" ]
    (List.map
       (fun (lo, hi, avg) ->
         [ string_of_int lo; string_of_int hi; Printf.sprintf "%.4f" avg ])
       (Profile.series (profile runner w)))
