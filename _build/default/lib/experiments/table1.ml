let render () =
  let rows =
    List.filter_map
      (fun cls ->
        match cls with
        | Ddg_isa.Opclass.Control -> None
        | _ ->
            Some
              [ Ddg_isa.Opclass.to_string cls;
                string_of_int (Ddg_isa.Opclass.latency cls) ])
      Ddg_isa.Opclass.all
  in
  Ddg_report.Table.render
    ~title:"Table 1: Instruction Class Operation Times"
    ~headers:[ ("Operation Class", Ddg_report.Table.Left);
               ("Steps", Ddg_report.Table.Right) ]
    rows
