(** Optimisation passes over the typed IR.

    The paper (section 3.1) points out that the compiler has a
    second-order effect on measured parallelism — "the MIPS compiler
    commonly performs loop unrolling which tends to decrease the
    recurrences created by loop counters, thus increasing the parallelism
    in the program". These passes let that effect be measured directly
    (see the benchmark harness's compiler-effects section):

    - {b constant folding and algebraic simplification}: literal
      arithmetic is evaluated, [x+0], [x*1], [x*0] (when [x] is pure),
      [if (0)]/[if (1)] branches and [while (0)] loops are resolved;
    - {b loop unrolling}: counted [while] loops of the shape produced by
      desugared [for] statements ([i] starts anywhere, the condition is
      [i < lit] or [i <= lit] on a local, the last body statement is
      [i = i + lit]) whose bodies neither reassign the counter nor call
      functions are unrolled four-way, with a scalar remainder loop.

    Passes are semantics-preserving: the test suite checks program output
    equality at every optimisation level on every workload. *)

type level =
  | O0  (** no optimisation *)
  | O1  (** constant folding + simplification (the default) *)
  | O2  (** O1 + four-way loop unrolling *)

val program : level -> Tast.tprogram -> Tast.tprogram

val fold_expr : Tast.texpr -> Tast.texpr
(** Constant-fold one expression (exposed for tests). *)

val unroll_factor : int
(** The fixed unroll factor (4). *)
