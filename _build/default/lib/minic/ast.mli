(** Abstract syntax of Mini-C.

    Mini-C is the small imperative language in which the SPEC-analog
    workloads are written — "ordinary programs" in the paper's sense. It
    has [int] and [float] scalars, fixed-size one- and multi-dimensional
    arrays (global or stack-allocated local; multi-dimensional accesses
    are lowered to row-major linear indexing by the typechecker),
    functions with value parameters and recursion, the usual control flow
    ([if]/[while]/[do]/[for] with [break]/[continue]) with short-circuit
    booleans and C-precedence bitwise operators, and I/O builtins mapping
    to system calls ([print_int], [print_float], [print_char],
    [read_int], [read_float]). Conversion builtins [float_of_int] and
    [int_of_float] cast explicitly; mixed int/float arithmetic promotes
    implicitly. *)

type ty = Tint | Tfloat | Tvoid

type binop =
  | Add | Sub | Mul | Div | Mod
  | Band | Bor | Bxor | Shl | Shr
  | Lt | Le | Gt | Ge | Eq | Ne
  | And | Or  (** short-circuit; [Band]..[Shr] are the int-only bitwise
                  operators [& | ^ << >>]; [Shr] is arithmetic *)

type unop = Neg | Not

type expr = { eline : int; enode : enode }

and enode =
  | Int_lit of int
  | Float_lit of float
  | Var of string
  | Index of string * expr list  (** [a[i]] or [a[i][j]] *)
  | Call of string * expr list   (** user function or builtin *)
  | Unop of unop * expr
  | Binop of binop * expr * expr

type stmt = { sline : int; snode : snode }

and snode =
  | Decl of ty * string * expr option      (** [int x = e;] *)
  | Decl_array of ty * string * int list
      (** [int a[n];] or [int a[n][m];] (local) *)
  | Assign of string * expr
  | Assign_index of string * expr list * expr
      (** [a[i] = e;] or [a[i][j] = e;] *)
  | If of expr * block * block
  | While of expr * block
  | Do_while of block * expr               (** [do { … } while (e);] *)
  | For of stmt option * expr option * stmt option * block
      (** [for (init; cond; step) …]; missing cond means [1] *)
  | Break
  | Continue
  | Return of expr option
  | Expr of expr                           (** expression statement *)
  | Block of block

and block = stmt list

type global =
  | Gvar of ty * string * expr option      (** constant initialiser only *)
  | Garray of ty * string * int list

type func = {
  fline : int;
  name : string;
  ret : ty;
  params : (ty * string) list;
  body : block;
}

type program = { globals : global list; funcs : func list }

val pp_ty : Format.formatter -> ty -> unit
val ty_to_string : ty -> string
