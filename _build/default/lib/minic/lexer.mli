(** Hand-written lexer for Mini-C. *)

type token =
  | Tint_lit of int
  | Tfloat_lit of float
  | Tident of string
  | Tkw of string
      (** int, float, void, if, else, while, do, for, return, break,
          continue *)
  | Tpunct of string
      (** one of: + - * / % < <= > >= == != && || ! = ( ) [ ] { } ; ,
          & | ^ << >> *)
  | Teof

type t = { token : token; line : int }

exception Error of { line : int; msg : string }

val tokenize : string -> t list
(** Comments: [//] to end of line and [/* ... */]. @raise Error *)

val token_to_string : token -> string
