(** One-call Mini-C compilation pipeline. *)

exception Error of { line : int; msg : string }
(** Any front-end error (lexing, parsing, typing), normalised. *)

val compile : ?opt:Optimize.level -> string -> Ddg_asm.Program.t
(** Source text to an executable program; [opt] defaults to
    {!Optimize.O1} (constant folding).
    @raise Error on any front-end error. *)

val emit_asm : ?opt:Optimize.level -> string -> string
(** Source text to assembly text (for inspection and tests).
    @raise Error *)

val run :
  ?opt:Optimize.level ->
  ?max_instructions:int ->
  ?input:Ddg_sim.Value.t list ->
  string ->
  Ddg_sim.Machine.result
(** Compile and execute.
    @raise Error *)

val run_to_trace :
  ?opt:Optimize.level ->
  ?max_instructions:int ->
  ?input:Ddg_sim.Value.t list ->
  string ->
  Ddg_sim.Machine.result * Ddg_sim.Trace.t
(** Compile and execute, collecting the trace.
    @raise Error *)
