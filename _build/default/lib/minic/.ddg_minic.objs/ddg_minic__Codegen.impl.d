lib/minic/codegen.ml: Array Ast Buffer Ddg_asm Ddg_isa Format List Printf Tast
