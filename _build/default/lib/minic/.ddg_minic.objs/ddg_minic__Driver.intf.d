lib/minic/driver.mli: Ddg_asm Ddg_sim Optimize
