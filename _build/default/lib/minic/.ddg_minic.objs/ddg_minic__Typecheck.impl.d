lib/minic/typecheck.ml: Array Ast Format Hashtbl List Tast
