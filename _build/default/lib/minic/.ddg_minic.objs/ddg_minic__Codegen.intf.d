lib/minic/codegen.mli: Ddg_asm Tast
