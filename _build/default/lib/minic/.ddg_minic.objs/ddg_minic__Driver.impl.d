lib/minic/driver.ml: Codegen Ddg_sim Lexer Optimize Parser Typecheck
