lib/minic/lexer.mli:
