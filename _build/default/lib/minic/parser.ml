exception Error of { line : int; msg : string }

let fail line fmt = Format.kasprintf (fun msg -> raise (Error { line; msg })) fmt

type state = { tokens : Lexer.t array; mutable pos : int }

let peek st = st.tokens.(st.pos)
let peek2 st =
  if st.pos + 1 < Array.length st.tokens then Some st.tokens.(st.pos + 1)
  else None

let line st = (peek st).line
let advance st = st.pos <- st.pos + 1

let expect_punct st p =
  match (peek st).token with
  | Lexer.Tpunct q when q = p -> advance st
  | tok ->
      fail (line st) "expected %S, found %S" p (Lexer.token_to_string tok)

let accept_punct st p =
  match (peek st).token with
  | Lexer.Tpunct q when q = p ->
      advance st;
      true
  | _ -> false

let expect_ident st =
  match (peek st).token with
  | Lexer.Tident name ->
      advance st;
      name
  | tok -> fail (line st) "expected identifier, found %S" (Lexer.token_to_string tok)

let parse_ty st =
  match (peek st).token with
  | Lexer.Tkw "int" -> advance st; Ast.Tint
  | Lexer.Tkw "float" -> advance st; Ast.Tfloat
  | Lexer.Tkw "void" -> advance st; Ast.Tvoid
  | tok -> fail (line st) "expected a type, found %S" (Lexer.token_to_string tok)

let is_ty st =
  match (peek st).token with
  | Lexer.Tkw ("int" | "float" | "void") -> true
  | _ -> false

(* --- expressions --------------------------------------------------------- *)

(* binary operator precedence tiers, low to high *)
let tiers =
  [ [ ("||", Ast.Or) ];
    [ ("&&", Ast.And) ];
    [ ("|", Ast.Bor) ];
    [ ("^", Ast.Bxor) ];
    [ ("&", Ast.Band) ];
    [ ("==", Ast.Eq); ("!=", Ast.Ne) ];
    [ ("<", Ast.Lt); ("<=", Ast.Le); (">", Ast.Gt); (">=", Ast.Ge) ];
    [ ("<<", Ast.Shl); (">>", Ast.Shr) ];
    [ ("+", Ast.Add); ("-", Ast.Sub) ];
    [ ("*", Ast.Mul); ("/", Ast.Div); ("%", Ast.Mod) ] ]

let rec parse_expr_prec st tier_index =
  if tier_index >= List.length tiers then parse_unary st
  else begin
    let ops = List.nth tiers tier_index in
    let left = ref (parse_expr_prec st (tier_index + 1)) in
    let continue = ref true in
    while !continue do
      match (peek st).token with
      | Lexer.Tpunct p when List.mem_assoc p ops ->
          let eline = line st in
          advance st;
          let right = parse_expr_prec st (tier_index + 1) in
          left :=
            { Ast.eline; enode = Ast.Binop (List.assoc p ops, !left, right) }
      | _ -> continue := false
    done;
    !left
  end

and parse_unary st =
  let eline = line st in
  match (peek st).token with
  | Lexer.Tpunct "-" ->
      advance st;
      { Ast.eline; enode = Ast.Unop (Ast.Neg, parse_unary st) }
  | Lexer.Tpunct "!" ->
      advance st;
      { Ast.eline; enode = Ast.Unop (Ast.Not, parse_unary st) }
  | _ -> parse_primary st

and parse_primary st =
  let eline = line st in
  match (peek st).token with
  | Lexer.Tint_lit i ->
      advance st;
      { Ast.eline; enode = Ast.Int_lit i }
  | Lexer.Tfloat_lit x ->
      advance st;
      { Ast.eline; enode = Ast.Float_lit x }
  | Lexer.Tpunct "(" ->
      advance st;
      let e = parse_expr_prec st 0 in
      expect_punct st ")";
      e
  | Lexer.Tident name -> (
      advance st;
      match (peek st).token with
      | Lexer.Tpunct "(" ->
          advance st;
          let args = parse_args st in
          { Ast.eline; enode = Ast.Call (name, args) }
      | Lexer.Tpunct "[" ->
          let indices = parse_indices st in
          { Ast.eline; enode = Ast.Index (name, indices) }
      | _ -> { Ast.eline; enode = Ast.Var name })
  | tok -> fail eline "expected an expression, found %S" (Lexer.token_to_string tok)

(* one or more bracketed index expressions: [i] or [i][j] ... *)
and parse_indices st =
  expect_punct st "[";
  let index = parse_expr_prec st 0 in
  expect_punct st "]";
  match (peek st).token with
  | Lexer.Tpunct "[" -> index :: parse_indices st
  | _ -> [ index ]

and parse_args st =
  if accept_punct st ")" then []
  else begin
    let rec go acc =
      let e = parse_expr_prec st 0 in
      if accept_punct st "," then go (e :: acc)
      else begin
        expect_punct st ")";
        List.rev (e :: acc)
      end
    in
    go []
  end

let parse_expression st = parse_expr_prec st 0

(* --- statements ------------------------------------------------------------ *)

(* assignment or expression statement, without the trailing ';' (shared by
   plain statements and for-loop init/step clauses) *)
let parse_simple st =
  let sline = line st in
  match (peek st).token, peek2 st with
  | Lexer.Tident name, Some { Lexer.token = Lexer.Tpunct "="; _ } ->
      advance st;
      advance st;
      let e = parse_expression st in
      { Ast.sline; snode = Ast.Assign (name, e) }
  | Lexer.Tident name, Some { Lexer.token = Lexer.Tpunct "["; _ } -> (
      (* could be a[i]… = e or an expression mentioning a[i]…; disambiguate
         by parsing the indices then checking for '=' *)
      let save = st.pos in
      advance st;
      let indices = parse_indices st in
      if accept_punct st "=" then
        let e = parse_expression st in
        { Ast.sline; snode = Ast.Assign_index (name, indices, e) }
      else begin
        st.pos <- save;
        let e = parse_expression st in
        { Ast.sline; snode = Ast.Expr e }
      end)
  | _ ->
      let e = parse_expression st in
      { Ast.sline; snode = Ast.Expr e }

(* one or more literal array dimensions: [n] or [n][m] ... *)
let rec parse_dims st =
  expect_punct st "[";
  let size =
    match (peek st).token with
    | Lexer.Tint_lit k when k > 0 ->
        advance st;
        k
    | _ -> fail (line st) "array size must be a positive integer literal"
  in
  expect_punct st "]";
  match (peek st).token with
  | Lexer.Tpunct "[" -> size :: parse_dims st
  | _ -> [ size ]

let rec parse_stmt st =
  let sline = line st in
  match (peek st).token with
  | Lexer.Tkw ("int" | "float") ->
      let ty = parse_ty st in
      let name = expect_ident st in
      if (peek st).token = Lexer.Tpunct "[" then begin
        let dims = parse_dims st in
        expect_punct st ";";
        { Ast.sline; snode = Ast.Decl_array (ty, name, dims) }
      end
      else begin
        let init = if accept_punct st "=" then Some (parse_expression st) else None in
        expect_punct st ";";
        { Ast.sline; snode = Ast.Decl (ty, name, init) }
      end
  | Lexer.Tkw "if" ->
      advance st;
      expect_punct st "(";
      let cond = parse_expression st in
      expect_punct st ")";
      let then_ = parse_body st in
      let else_ =
        match (peek st).token with
        | Lexer.Tkw "else" ->
            advance st;
            parse_body st
        | _ -> []
      in
      { Ast.sline; snode = Ast.If (cond, then_, else_) }
  | Lexer.Tkw "while" ->
      advance st;
      expect_punct st "(";
      let cond = parse_expression st in
      expect_punct st ")";
      { Ast.sline; snode = Ast.While (cond, parse_body st) }
  | Lexer.Tkw "do" ->
      advance st;
      let body = parse_body st in
      (match (peek st).token with
      | Lexer.Tkw "while" -> advance st
      | tok -> fail (line st) "expected 'while', found %S" (Lexer.token_to_string tok));
      expect_punct st "(";
      let cond = parse_expression st in
      expect_punct st ")";
      expect_punct st ";";
      { Ast.sline; snode = Ast.Do_while (body, cond) }
  | Lexer.Tkw "for" ->
      advance st;
      expect_punct st "(";
      let init =
        if accept_punct st ";" then None
        else begin
          let s = parse_simple st in
          expect_punct st ";";
          Some s
        end
      in
      let cond =
        if accept_punct st ";" then None
        else begin
          let e = parse_expression st in
          expect_punct st ";";
          Some e
        end
      in
      let step =
        if accept_punct st ")" then None
        else begin
          let s = parse_simple st in
          expect_punct st ")";
          Some s
        end
      in
      { Ast.sline; snode = Ast.For (init, cond, step, parse_body st) }
  | Lexer.Tkw "break" ->
      advance st;
      expect_punct st ";";
      { Ast.sline; snode = Ast.Break }
  | Lexer.Tkw "continue" ->
      advance st;
      expect_punct st ";";
      { Ast.sline; snode = Ast.Continue }
  | Lexer.Tkw "return" ->
      advance st;
      if accept_punct st ";" then { Ast.sline; snode = Ast.Return None }
      else begin
        let e = parse_expression st in
        expect_punct st ";";
        { Ast.sline; snode = Ast.Return (Some e) }
      end
  | Lexer.Tpunct "{" -> { Ast.sline; snode = Ast.Block (parse_block st) }
  | _ ->
      let s = parse_simple st in
      expect_punct st ";";
      s

and parse_block st =
  expect_punct st "{";
  let rec go acc =
    if accept_punct st "}" then List.rev acc else go (parse_stmt st :: acc)
  in
  go []

(* an if/while/for body: a block, or a single statement treated as one *)
and parse_body st =
  match (peek st).token with
  | Lexer.Tpunct "{" -> parse_block st
  | _ -> [ parse_stmt st ]

(* --- top level --------------------------------------------------------------- *)

let parse_program st =
  let globals = ref [] and funcs = ref [] in
  let rec go () =
    match (peek st).token with
    | Lexer.Teof -> ()
    | _ ->
        if not (is_ty st) then
          fail (line st) "expected a declaration, found %S"
            (Lexer.token_to_string (peek st).token);
        let fline = line st in
        let ty = parse_ty st in
        let name = expect_ident st in
        (match (peek st).token with
        | Lexer.Tpunct "(" ->
            advance st;
            let params =
              if accept_punct st ")" then []
              else begin
                let rec params acc =
                  let pty = parse_ty st in
                  let pname = expect_ident st in
                  if accept_punct st "," then params ((pty, pname) :: acc)
                  else begin
                    expect_punct st ")";
                    List.rev ((pty, pname) :: acc)
                  end
                in
                params []
              end
            in
            let body = parse_block st in
            funcs := { Ast.fline; name; ret = ty; params; body } :: !funcs
        | Lexer.Tpunct "[" ->
            let dims = parse_dims st in
            expect_punct st ";";
            globals := Ast.Garray (ty, name, dims) :: !globals
        | _ ->
            let init =
              if accept_punct st "=" then Some (parse_expression st) else None
            in
            expect_punct st ";";
            globals := Ast.Gvar (ty, name, init) :: !globals);
        go ()
  in
  go ();
  { Ast.globals = List.rev !globals; funcs = List.rev !funcs }

let state_of_string source =
  { tokens = Array.of_list (Lexer.tokenize source); pos = 0 }

let parse source = parse_program (state_of_string source)

let parse_expr source =
  let st = state_of_string source in
  let e = parse_expression st in
  (match (peek st).token with
  | Lexer.Teof -> ()
  | tok -> fail (line st) "trailing input: %S" (Lexer.token_to_string tok));
  e
