(** Recursive-descent parser for Mini-C.

    Grammar sketch:
    {v
    program  := (global | function)*
    global   := ty ident ('=' expr)? ';'  |  ty ident '[' intlit ']' ';'
    function := ty ident '(' params? ')' '{' stmt* '}'
    stmt     := decl ';' | assignment ';' | 'if' | 'while' | 'do' | 'for'
              | 'return' expr? ';' | expr ';' | '{' stmt* '}'
    v}

    Operator precedence, low to high:
    [||], [&&], [== !=], [< <= > >=], [+ -], [* / %], unary [- !]. *)

exception Error of { line : int; msg : string }

val parse : string -> Ast.program
(** @raise Error on syntax errors, @raise Lexer.Error on lexical errors. *)

val parse_expr : string -> Ast.expr
(** Parse a single expression (for tests). *)
