type ty = Tint | Tfloat | Tvoid

type binop =
  | Add | Sub | Mul | Div | Mod
  | Band | Bor | Bxor | Shl | Shr
  | Lt | Le | Gt | Ge | Eq | Ne
  | And | Or

type unop = Neg | Not

type expr = { eline : int; enode : enode }

and enode =
  | Int_lit of int
  | Float_lit of float
  | Var of string
  | Index of string * expr list
  | Call of string * expr list
  | Unop of unop * expr
  | Binop of binop * expr * expr

type stmt = { sline : int; snode : snode }

and snode =
  | Decl of ty * string * expr option
  | Decl_array of ty * string * int list
  | Assign of string * expr
  | Assign_index of string * expr list * expr
  | If of expr * block * block
  | While of expr * block
  | Do_while of block * expr
  | For of stmt option * expr option * stmt option * block
  | Break
  | Continue
  | Return of expr option
  | Expr of expr
  | Block of block

and block = stmt list

type global =
  | Gvar of ty * string * expr option
  | Garray of ty * string * int list

type func = {
  fline : int;
  name : string;
  ret : ty;
  params : (ty * string) list;
  body : block;
}

type program = { globals : global list; funcs : func list }

let ty_to_string = function
  | Tint -> "int"
  | Tfloat -> "float"
  | Tvoid -> "void"

let pp_ty ppf ty = Format.pp_print_string ppf (ty_to_string ty)
