(** Type checking and name resolution: {!Ast.program} to {!Tast.tprogram}.

    Checks performed:
    - every name is declared before use, no duplicate declarations in the
      same scope, no shadowing of a function by a variable of the same
      name in a call position;
    - arrays are indexed with [int] expressions and only arrays are
      indexed; scalars and arrays are not mixed;
    - arithmetic promotes [int] to [float] implicitly (explicit casts via
      the [float_of_int]/[int_of_float] builtins); [float] never demotes
      implicitly; [%] and the logical operators are [int]-only;
    - calls match arity and (promoted) parameter types; [void] functions
      are only called as statements;
    - [return] matches the function's return type;
    - a function [main] with no parameters exists.

    Desugarings: [for] to [while]; declarations with initialisers to
    assignments; implicit promotions to explicit cast nodes. *)

exception Error of { line : int; msg : string }

val check : Ast.program -> Tast.tprogram
(** @raise Error on the first type or scoping error. *)
