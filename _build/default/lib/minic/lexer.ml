type token =
  | Tint_lit of int
  | Tfloat_lit of float
  | Tident of string
  | Tkw of string
  | Tpunct of string
  | Teof

type t = { token : token; line : int }

exception Error of { line : int; msg : string }

let fail line fmt = Format.kasprintf (fun msg -> raise (Error { line; msg })) fmt

let keywords =
  [ "int"; "float"; "void"; "if"; "else"; "while"; "do"; "for"; "return";
    "break"; "continue" ]

let is_digit c = c >= '0' && c <= '9'
let is_alpha c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_alpha c || is_digit c

let tokenize source =
  let n = String.length source in
  let tokens = ref [] in
  let line = ref 1 in
  let emit token = tokens := { token; line = !line } :: !tokens in
  let rec skip_block_comment i =
    if i + 1 >= n then fail !line "unterminated comment"
    else if source.[i] = '\n' then begin incr line; skip_block_comment (i + 1) end
    else if source.[i] = '*' && source.[i + 1] = '/' then i + 2
    else skip_block_comment (i + 1)
  in
  let rec go i =
    if i >= n then ()
    else
      match source.[i] with
      | '\n' -> incr line; go (i + 1)
      | ' ' | '\t' | '\r' -> go (i + 1)
      | '/' when i + 1 < n && source.[i + 1] = '/' ->
          let rec eol j = if j >= n || source.[j] = '\n' then j else eol (j + 1) in
          go (eol (i + 1))
      | '/' when i + 1 < n && source.[i + 1] = '*' ->
          go (skip_block_comment (i + 2))
      | c when is_digit c || (c = '.' && i + 1 < n && is_digit source.[i + 1]) ->
          let stop = ref i in
          let is_float = ref false in
          let hex = c = '0' && i + 1 < n && (source.[i+1] = 'x' || source.[i+1] = 'X') in
          if hex then stop := i + 2;
          while
            !stop < n
            && (is_digit source.[!stop]
               || (hex && (let ch = source.[!stop] in
                           (ch >= 'a' && ch <= 'f') || (ch >= 'A' && ch <= 'F')))
               || ((not hex) && (source.[!stop] = '.' || source.[!stop] = 'e'
                                 || source.[!stop] = 'E'
                                 || ((source.[!stop] = '-' || source.[!stop] = '+')
                                    && !stop > i
                                    && (source.[!stop - 1] = 'e'
                                       || source.[!stop - 1] = 'E')))))
          do
            (match source.[!stop] with
            | '.' | 'e' | 'E' when not hex -> is_float := true
            | _ -> ());
            incr stop
          done;
          let text = String.sub source i (!stop - i) in
          if !is_float then (
            match float_of_string_opt text with
            | Some x -> emit (Tfloat_lit x)
            | None -> fail !line "bad float literal %S" text)
          else (
            match int_of_string_opt text with
            | Some k -> emit (Tint_lit k)
            | None -> fail !line "bad integer literal %S" text);
          go !stop
      | c when is_alpha c ->
          let stop = ref i in
          while !stop < n && is_ident_char source.[!stop] do incr stop done;
          let word = String.sub source i (!stop - i) in
          if List.mem word keywords then emit (Tkw word) else emit (Tident word);
          go !stop
      | c -> (
          let two =
            if i + 1 < n then String.sub source i 2 else ""
          in
          match two with
          | "<=" | ">=" | "==" | "!=" | "&&" | "||" | "<<" | ">>" ->
              emit (Tpunct two);
              go (i + 2)
          | _ -> (
              match c with
              | '+' | '-' | '*' | '/' | '%' | '<' | '>' | '!' | '=' | '('
              | ')' | '[' | ']' | '{' | '}' | ';' | ',' | '&' | '|' | '^' ->
                  emit (Tpunct (String.make 1 c));
                  go (i + 1)
              | _ -> fail !line "unexpected character %C" c))
  in
  go 0;
  emit Teof;
  List.rev !tokens

let token_to_string = function
  | Tint_lit i -> string_of_int i
  | Tfloat_lit x -> string_of_float x
  | Tident s -> s
  | Tkw s -> s
  | Tpunct s -> s
  | Teof -> "<eof>"
