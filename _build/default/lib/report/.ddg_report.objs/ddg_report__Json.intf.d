lib/report/json.mli:
