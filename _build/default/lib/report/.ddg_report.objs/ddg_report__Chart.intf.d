lib/report/chart.mli:
