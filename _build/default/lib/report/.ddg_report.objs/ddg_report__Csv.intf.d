lib/report/csv.mli:
