lib/report/table.mli:
