type align = Left | Right

let group_digits s =
  (* insert ',' every three digits, from the right, integer part only *)
  let int_part, rest =
    match String.index_opt s '.' with
    | Some i -> (String.sub s 0 i, String.sub s i (String.length s - i))
    | None -> (s, "")
  in
  let sign, digits =
    if String.length int_part > 0 && int_part.[0] = '-' then
      ("-", String.sub int_part 1 (String.length int_part - 1))
    else ("", int_part)
  in
  let n = String.length digits in
  let buf = Buffer.create (n + (n / 3) + 2) in
  Buffer.add_string buf sign;
  String.iteri
    (fun i c ->
      if i > 0 && (n - i) mod 3 = 0 then Buffer.add_char buf ',';
      Buffer.add_char buf c)
    digits;
  Buffer.add_string buf rest;
  Buffer.contents buf

let float_cell ?(decimals = 2) x = group_digits (Printf.sprintf "%.*f" decimals x)
let int_cell k = group_digits (string_of_int k)

let render ?title ~headers rows =
  let ncols = List.length headers in
  let rows =
    List.map
      (fun row ->
        let len = List.length row in
        if len > ncols then invalid_arg "Table.render: row too long"
        else row @ List.init (ncols - len) (fun _ -> ""))
      rows
  in
  let widths =
    List.mapi
      (fun i (h, _) ->
        List.fold_left
          (fun acc row -> max acc (String.length (List.nth row i)))
          (String.length h) rows)
      headers
  in
  let pad align width s =
    let fill = String.make (max 0 (width - String.length s)) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s
  in
  let buf = Buffer.create 1024 in
  (match title with
  | Some t ->
      Buffer.add_string buf t;
      Buffer.add_char buf '\n'
  | None -> ());
  let emit_row cells =
    List.iteri
      (fun i cell ->
        if i > 0 then Buffer.add_string buf "  ";
        let width = List.nth widths i in
        let _, align = List.nth headers i in
        Buffer.add_string buf (pad align width cell))
      cells;
    Buffer.add_char buf '\n'
  in
  emit_row (List.map fst headers);
  emit_row (List.map (fun w -> String.make w '-') widths);
  List.iter emit_row rows;
  Buffer.contents buf
