type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* nan/infinity are handled by the caller *)
let float_repr x =
  if Float.is_integer x && Float.abs x < 1e15 then Printf.sprintf "%.1f" x
  else Printf.sprintf "%.12g" x

let to_string ?(minify = false) t =
  let buf = Buffer.create 256 in
  let newline indent =
    if not minify then begin
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make indent ' ')
    end
  in
  let rec emit indent = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float x ->
        if Float.is_nan x || x = Float.infinity || x = Float.neg_infinity
        then Buffer.add_string buf "null"
        else Buffer.add_string buf (float_repr x)
    | String s ->
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape s);
        Buffer.add_char buf '"'
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i item ->
            if i > 0 then Buffer.add_char buf ',';
            newline (indent + 2);
            emit (indent + 2) item)
          items;
        newline indent;
        Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (key, value) ->
            if i > 0 then Buffer.add_char buf ',';
            newline (indent + 2);
            Buffer.add_char buf '"';
            Buffer.add_string buf (escape key);
            Buffer.add_string buf (if minify then "\":" else "\": ");
            emit (indent + 2) value)
          fields;
        newline indent;
        Buffer.add_char buf '}'
  in
  emit 0 t;
  Buffer.contents buf
