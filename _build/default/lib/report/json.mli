(** Minimal JSON emission (no external dependencies) for machine-readable
    CLI output. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?minify:bool -> t -> string
(** Pretty-printed with two-space indentation by default; [minify] emits
    a single line. Floats that are whole numbers keep a trailing [.0];
    NaN and infinities are emitted as [null] (JSON has no encoding for
    them). *)
