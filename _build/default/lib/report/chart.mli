(** ASCII charts for the figure-regenerating benchmarks.

    Figure 7 (parallelism profiles) renders as a filled column chart of
    operations-per-level against DDG level; Figure 8 (window size vs
    percent of parallelism) renders as a log-log scatter with one symbol
    per series. *)

val column_chart :
  ?width:int ->
  ?height:int ->
  ?y_label:string ->
  ?log_y:bool ->
  (float * float) list ->
  string
(** [column_chart points] plots (x, y) samples as vertical bars, binning x
    into [width] columns (y is averaged within a bin) and scaling y to
    [height] rows; [log_y] (default false) uses a logarithmic y scale,
    which keeps bursty profiles readable. Intended for parallelism
    profiles. *)

val log_log_scatter :
  ?width:int ->
  ?height:int ->
  ?x_label:string ->
  ?y_label:string ->
  (string * char * (float * float) list) list ->
  string
(** [log_log_scatter series]: each series is (name, symbol, points); axes
    are log10. Points with non-positive coordinates are dropped. A legend
    line lists symbol = name pairs. *)

val sparkline : float list -> string
(** One-line profile summary using block characters. *)
