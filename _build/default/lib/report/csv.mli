(** Minimal CSV output (for piping figure data into external plotters). *)

val to_string : header:string list -> string list list -> string
(** Fields containing commas, quotes or newlines are quoted and escaped. *)

val write : string -> header:string list -> string list list -> unit
(** Write to a file path. *)
