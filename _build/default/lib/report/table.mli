(** Plain-text table rendering for the benchmark harness. *)

type align = Left | Right

val render :
  ?title:string -> headers:(string * align) list -> string list list -> string
(** [render ~headers rows]: columns are sized to their widest cell; rows
    shorter than the header list are padded with empty cells.
    @raise Invalid_argument if a row is longer than the header list. *)

val float_cell : ?decimals:int -> float -> string
(** Fixed-point with thousands grouping, e.g. [23,302.60]. *)

val int_cell : int -> string
(** Thousands-grouped integer, e.g. [1,321,698]. *)
