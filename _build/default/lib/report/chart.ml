let column_chart ?(width = 72) ?(height = 12) ?(y_label = "") ?(log_y = false)
    points =
  match points with
  | [] -> "(empty profile)\n"
  | _ ->
      let xmax = List.fold_left (fun m (x, _) -> Float.max m x) 0.0 points in
      let ymax = List.fold_left (fun m (_, y) -> Float.max m y) 0.0 points in
      let ymax = if ymax <= 0.0 then 1.0 else ymax in
      let sums = Array.make width 0.0 and counts = Array.make width 0 in
      List.iter
        (fun (x, y) ->
          let bin =
            if xmax <= 0.0 then 0
            else min (width - 1) (int_of_float (x /. xmax *. float_of_int (width - 1)))
          in
          sums.(bin) <- sums.(bin) +. y;
          counts.(bin) <- counts.(bin) + 1)
        points;
      let columns =
        Array.init width (fun i ->
            if counts.(i) = 0 then 0.0 else sums.(i) /. float_of_int counts.(i))
      in
      (* on a log scale the rows span 1..ymax in equal log steps *)
      let scale v =
        if not log_y then v /. ymax
        else if v < 1.0 then 0.0
        else Float.log (v +. 1.0) /. Float.log (ymax +. 1.0)
      in
      let buf = Buffer.create ((width + 16) * (height + 2)) in
      if y_label <> "" then
        Buffer.add_string buf
          (Printf.sprintf "%s (max %.6g%s)\n" y_label ymax
             (if log_y then ", log scale" else ""));
      for row = height downto 1 do
        let threshold = float_of_int row /. float_of_int height in
        Buffer.add_string buf "  |";
        Array.iter
          (fun v ->
            let s = scale v in
            Buffer.add_char buf
              (if s >= threshold then '#'
               else if s >= threshold -. (0.5 /. float_of_int height) && v > 0.
               then '.'
               else ' '))
          columns;
        Buffer.add_char buf '\n'
      done;
      Buffer.add_string buf "  +";
      Buffer.add_string buf (String.make width '-');
      Buffer.add_char buf '\n';
      Buffer.add_string buf
        (Printf.sprintf "   0%sDDG level %.6g\n"
           (String.make (max 1 (width - 18)) ' ')
           xmax);
      Buffer.contents buf

let log_log_scatter ?(width = 64) ?(height = 20) ?(x_label = "x")
    ?(y_label = "y") series =
  let all_points =
    List.concat_map (fun (_, _, pts) -> pts) series
    |> List.filter (fun (x, y) -> x > 0.0 && y > 0.0)
  in
  match all_points with
  | [] -> "(no points)\n"
  | _ ->
      let log10 = Float.log10 in
      let fold f init sel =
        List.fold_left (fun acc p -> f acc (sel p)) init all_points
      in
      let xmin = fold Float.min infinity (fun (x, _) -> log10 x) in
      let xmax = fold Float.max neg_infinity (fun (x, _) -> log10 x) in
      let ymin = fold Float.min infinity (fun (_, y) -> log10 y) in
      let ymax = fold Float.max neg_infinity (fun (_, y) -> log10 y) in
      let xspan = if xmax -. xmin < 1e-9 then 1.0 else xmax -. xmin in
      let yspan = if ymax -. ymin < 1e-9 then 1.0 else ymax -. ymin in
      let grid = Array.make_matrix height width ' ' in
      List.iter
        (fun (_, symbol, pts) ->
          List.iter
            (fun (x, y) ->
              if x > 0.0 && y > 0.0 then begin
                let cx =
                  int_of_float ((log10 x -. xmin) /. xspan *. float_of_int (width - 1))
                in
                let cy =
                  int_of_float ((log10 y -. ymin) /. yspan *. float_of_int (height - 1))
                in
                grid.(height - 1 - cy).(cx) <- symbol
              end)
            pts)
        series;
      let buf = Buffer.create ((width + 12) * (height + 4)) in
      Buffer.add_string buf
        (Printf.sprintf "%s (log), 10^%.1f .. 10^%.1f\n" y_label ymin ymax);
      Array.iter
        (fun row ->
          Buffer.add_string buf "  |";
          Array.iter (Buffer.add_char buf) row;
          Buffer.add_char buf '\n')
        grid;
      Buffer.add_string buf "  +";
      Buffer.add_string buf (String.make width '-');
      Buffer.add_char buf '\n';
      Buffer.add_string buf
        (Printf.sprintf "   %s (log), 10^%.1f .. 10^%.1f\n" x_label xmin xmax);
      Buffer.add_string buf "   legend:";
      List.iter
        (fun (name, symbol, _) ->
          Buffer.add_string buf (Printf.sprintf " %c=%s" symbol name))
        series;
      Buffer.add_char buf '\n';
      Buffer.contents buf

let sparkline values =
  let blocks = [| " "; "_"; "."; ":"; "-"; "="; "+"; "*"; "#" |] in
  match values with
  | [] -> ""
  | _ ->
      let vmax = List.fold_left Float.max 0.0 values in
      if vmax <= 0.0 then String.concat "" (List.map (fun _ -> " ") values)
      else
        String.concat ""
          (List.map
             (fun v ->
               let i =
                 int_of_float (v /. vmax *. float_of_int (Array.length blocks - 1))
               in
               blocks.(max 0 (min (Array.length blocks - 1) i)))
             values)
