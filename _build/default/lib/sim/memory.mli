(** Sparse word-addressed memory.

    Backed by a hash table from word-aligned byte addresses to values;
    uninitialised reads return {!Value.zero}. The simulated programs touch
    at most a few megabytes, so sparseness keeps the footprint proportional
    to the live data. *)

type t

exception Unaligned of int

val create : unit -> t

val load : t -> int -> Value.t
(** @raise Unaligned if the address is not word-aligned. *)

val store : t -> int -> Value.t -> unit
(** @raise Unaligned if the address is not word-aligned. *)

val load_initialised : t -> int -> Value.t option
(** [None] if the word was never written. *)

val init_of_program : t -> Ddg_asm.Program.t -> unit
(** Write a program's static data image ([.word], [.float]; [.space] is
    left zero/unwritten). *)

val footprint : t -> int
(** Number of distinct words ever written. *)
