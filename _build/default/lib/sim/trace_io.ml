exception Corrupt of string

let magic = "DDGTRC01"
let terminator = 0xFF

let corrupt fmt = Format.kasprintf (fun msg -> raise (Corrupt msg)) fmt

(* --- varint (LEB128, unsigned) ------------------------------------------- *)

let write_varint oc v =
  if v < 0 then invalid_arg "Trace_io: negative varint";
  let v = ref v in
  let continue = ref true in
  while !continue do
    let byte = !v land 0x7F in
    v := !v lsr 7;
    if !v = 0 then begin
      output_byte oc byte;
      continue := false
    end
    else output_byte oc (byte lor 0x80)
  done

let read_varint ic =
  let rec go shift acc =
    if shift > 56 then corrupt "varint too long";
    let byte = try input_byte ic with End_of_file -> corrupt "truncated varint" in
    let acc = acc lor ((byte land 0x7F) lsl shift) in
    if byte land 0x80 = 0 then acc else go (shift + 7) acc
  in
  go 0 0

(* --- classes and locations ------------------------------------------------ *)

let class_code (c : Ddg_isa.Opclass.t) =
  match c with
  | Int_alu -> 0
  | Int_multiply -> 1
  | Int_divide -> 2
  | Fp_add_sub -> 3
  | Fp_multiply -> 4
  | Fp_divide -> 5
  | Load_store -> 6
  | Syscall -> 7
  | Control -> 8

let class_of_code = function
  | 0 -> Ddg_isa.Opclass.Int_alu
  | 1 -> Ddg_isa.Opclass.Int_multiply
  | 2 -> Ddg_isa.Opclass.Int_divide
  | 3 -> Ddg_isa.Opclass.Fp_add_sub
  | 4 -> Ddg_isa.Opclass.Fp_multiply
  | 5 -> Ddg_isa.Opclass.Fp_divide
  | 6 -> Ddg_isa.Opclass.Load_store
  | 7 -> Ddg_isa.Opclass.Syscall
  | 8 -> Ddg_isa.Opclass.Control
  | k -> corrupt "unknown operation class %d" k

let write_loc oc (loc : Ddg_isa.Loc.t) =
  match loc with
  | Reg r ->
      output_byte oc 0;
      write_varint oc r
  | Freg r ->
      output_byte oc 1;
      write_varint oc r
  | Mem a ->
      output_byte oc 2;
      write_varint oc a

let read_loc ic : Ddg_isa.Loc.t =
  let tag = try input_byte ic with End_of_file -> corrupt "truncated location" in
  let v = read_varint ic in
  match tag with
  | 0 -> Reg v
  | 1 -> Freg v
  | 2 -> Mem v
  | k -> corrupt "unknown location tag %d" k

(* --- events ----------------------------------------------------------------- *)

let write_event oc (e : Trace.event) =
  let flags = class_code e.op_class in
  let flags = if e.dest <> None then flags lor 0x10 else flags in
  let flags =
    match e.branch with
    | Some { Trace.taken } -> flags lor 0x20 lor (if taken then 0x40 else 0)
    | None -> flags
  in
  output_byte oc flags;
  write_varint oc e.pc;
  (match e.dest with Some d -> write_loc oc d | None -> ());
  write_varint oc (List.length e.srcs);
  List.iter (write_loc oc) e.srcs

let read_event ic flags : Trace.event =
  let op_class = class_of_code (flags land 0x0F) in
  let pc = read_varint ic in
  let dest = if flags land 0x10 <> 0 then Some (read_loc ic) else None in
  let nsrcs = read_varint ic in
  if nsrcs > 16 then corrupt "implausible source count %d" nsrcs;
  let srcs = List.init nsrcs (fun _ -> read_loc ic) in
  let branch =
    if flags land 0x20 <> 0 then Some { Trace.taken = flags land 0x40 <> 0 }
    else None
  in
  { Trace.pc; op_class; dest; srcs; branch }

(* --- whole-trace and streaming APIs ------------------------------------------- *)

let writer oc =
  output_string oc magic;
  let emit e = write_event oc e in
  let close () = output_byte oc terminator in
  (emit, close)

let write_channel oc trace =
  let emit, close = writer oc in
  Trace.iter emit trace;
  close ()

let write_file path trace =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> write_channel oc trace)

let check_magic ic =
  let buf = Bytes.create (String.length magic) in
  (try really_input ic buf 0 (String.length magic)
   with End_of_file -> corrupt "missing header");
  if Bytes.to_string buf <> magic then corrupt "bad magic (not a trace file)"

let fold_channel ic ~init ~f =
  check_magic ic;
  let rec go acc =
    let flags =
      try input_byte ic with End_of_file -> corrupt "missing terminator"
    in
    if flags = terminator then acc else go (f acc (read_event ic flags))
  in
  go init

let read_channel ic =
  let trace = Trace.create () in
  fold_channel ic ~init:() ~f:(fun () e -> Trace.add trace e);
  trace

let read_file path =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> read_channel ic)
