(** Dynamic execution traces.

    A trace is the sequence of events emitted by the simulator, one per
    executed instruction, in serial program order — the same information a
    Pixie-instrumented binary gave the paper's authors. Each event carries
    exactly what Paragraph needs: the operation class (for its Table 1
    latency), the source locations read, the destination location written
    (if the instruction creates a value) and whether it is a system call.

    Control instructions (branches, jumps) appear in the trace — they
    occupy instruction-window slots — but create no values and are never
    placed in the DDG. Conditional branches record their outcome so that
    branch-prediction experiments can be layered on top. *)

type branch_info = { taken : bool }

type event = {
  pc : int;                     (** instruction index in the program *)
  op_class : Ddg_isa.Opclass.t;
  dest : Ddg_isa.Loc.t option;  (** location written, if a value is created *)
  srcs : Ddg_isa.Loc.t list;    (** locations read (registers and memory) *)
  branch : branch_info option;  (** [Some _] for conditional branches *)
}

val creates_value : event -> bool
(** True when the event has class other than [Control]; only such events
    become DDG nodes. *)

val is_syscall : event -> bool

val pp_event : Format.formatter -> event -> unit

(** Growable in-memory trace buffer. *)
type t

val create : ?capacity:int -> unit -> t
val add : t -> event -> unit
val length : t -> int

val get : t -> int -> event
(** @raise Invalid_argument on out-of-range index. *)

val iter : (event -> unit) -> t -> unit
val iteri : (int -> event -> unit) -> t -> unit
val of_list : event list -> t
val to_list : t -> event list

val count : (event -> bool) -> t -> int
(** Number of events satisfying a predicate. *)
