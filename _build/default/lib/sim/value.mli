(** Machine values: one word is either an integer or a float.

    The simulated machine is word-typed rather than bit-typed: a memory
    word remembers whether it was written as an integer or a float, and
    cross-typed reads coerce. This loses nothing for dependency analysis
    (Paragraph only cares about {e which} location is read/written, never
    the bits) and keeps the simulator simple and obviously correct. *)

type t = Int of int | Float of float

val zero : t

val to_int : t -> int
(** Coerce: [Float x] truncates. *)

val to_float : t -> float
(** Coerce: [Int i] converts. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
