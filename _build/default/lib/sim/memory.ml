type t = (int, Value.t) Hashtbl.t

exception Unaligned of int

let create () : t = Hashtbl.create 4096

let check_aligned addr =
  if addr land (Ddg_isa.Segment.word_size - 1) <> 0 then raise (Unaligned addr)

let load t addr =
  check_aligned addr;
  match Hashtbl.find_opt t addr with Some v -> v | None -> Value.zero

let store t addr v =
  check_aligned addr;
  Hashtbl.replace t addr v

let load_initialised t addr =
  check_aligned addr;
  Hashtbl.find_opt t addr

let init_of_program t (p : Ddg_asm.Program.t) =
  List.iter
    (fun (addr, datum) ->
      match datum with
      | Ddg_asm.Program.Word w -> store t addr (Value.Int w)
      | Ddg_asm.Program.Float_word x -> store t addr (Value.Float x)
      | Ddg_asm.Program.Space _ -> ())
    p.data

let footprint t = Hashtbl.length t
