type t = Int of int | Float of float

let zero = Int 0

let to_int = function Int i -> i | Float x -> int_of_float x
let to_float = function Int i -> float_of_int i | Float x -> x

let equal a b =
  match a, b with
  | Int i, Int j -> i = j
  | Float x, Float y -> Float.equal x y
  | Int _, Float _ | Float _, Int _ -> false

let pp ppf = function
  | Int i -> Format.pp_print_int ppf i
  | Float x -> Format.fprintf ppf "%g" x
