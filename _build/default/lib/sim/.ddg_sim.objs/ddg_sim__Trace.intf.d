lib/sim/trace.mli: Ddg_isa Format
