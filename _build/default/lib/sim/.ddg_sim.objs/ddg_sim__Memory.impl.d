lib/sim/memory.ml: Ddg_asm Ddg_isa Hashtbl List Value
