lib/sim/machine.mli: Ddg_asm Format Trace Value
