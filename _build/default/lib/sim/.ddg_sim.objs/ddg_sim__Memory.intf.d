lib/sim/memory.mli: Ddg_asm Value
