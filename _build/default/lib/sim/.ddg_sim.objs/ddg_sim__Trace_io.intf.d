lib/sim/trace_io.mli: Trace
