lib/sim/trace_io.ml: Bytes Ddg_isa Format Fun List String Trace
