lib/sim/machine.ml: Array Buffer Char Ddg_asm Ddg_isa Format Insn Loc Memory Opclass Printf Reg Segment Trace Value
