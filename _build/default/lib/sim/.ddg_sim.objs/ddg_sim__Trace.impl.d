lib/sim/trace.ml: Array Ddg_isa Format List
