type branch_info = { taken : bool }

type event = {
  pc : int;
  op_class : Ddg_isa.Opclass.t;
  dest : Ddg_isa.Loc.t option;
  srcs : Ddg_isa.Loc.t list;
  branch : branch_info option;
}

let creates_value e = Ddg_isa.Opclass.creates_value e.op_class
let is_syscall e = Ddg_isa.Opclass.equal e.op_class Ddg_isa.Opclass.Syscall

let pp_event ppf e =
  let pp_loc = Ddg_isa.Loc.pp in
  Format.fprintf ppf "@[<h>%5d %-22s" e.pc
    (Ddg_isa.Opclass.to_string e.op_class);
  (match e.dest with
  | Some d -> Format.fprintf ppf " %a <-" pp_loc d
  | None -> Format.fprintf ppf " _ <-");
  List.iter (fun s -> Format.fprintf ppf " %a" pp_loc s) e.srcs;
  (match e.branch with
  | Some { taken } -> Format.fprintf ppf " (%s)" (if taken then "T" else "NT")
  | None -> ());
  Format.fprintf ppf "@]"

(* Growable array. The dummy cell is never exposed: [length] bounds reads. *)
type t = { mutable events : event array; mutable len : int }

let dummy =
  {
    pc = -1;
    op_class = Ddg_isa.Opclass.Control;
    dest = None;
    srcs = [];
    branch = None;
  }

let create ?(capacity = 4096) () =
  { events = Array.make (max 1 capacity) dummy; len = 0 }

let add t e =
  if t.len = Array.length t.events then begin
    let bigger = Array.make (2 * t.len) dummy in
    Array.blit t.events 0 bigger 0 t.len;
    t.events <- bigger
  end;
  t.events.(t.len) <- e;
  t.len <- t.len + 1

let length t = t.len

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Trace.get";
  t.events.(i)

let iter f t =
  for i = 0 to t.len - 1 do
    f t.events.(i)
  done

let iteri f t =
  for i = 0 to t.len - 1 do
    f i t.events.(i)
  done

let of_list events =
  let t = create ~capacity:(max 1 (List.length events)) () in
  List.iter (add t) events;
  t

let to_list t =
  List.init t.len (fun i -> t.events.(i))

let count p t =
  let n = ref 0 in
  iter (fun e -> if p e then incr n) t;
  !n
