lib/asm/assembler.ml: Array Ast Ddg_isa Format Hashtbl Insn List Parser Program Reg Segment
