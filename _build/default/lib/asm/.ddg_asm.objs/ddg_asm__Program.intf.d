lib/asm/program.mli: Ddg_isa Format
