lib/asm/assembler.mli: Ast Program
