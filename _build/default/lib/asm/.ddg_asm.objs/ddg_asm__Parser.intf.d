lib/asm/parser.mli: Ast
