lib/asm/program.ml: Array Ddg_isa Format List
