lib/asm/ast.ml: Ddg_isa Format
