lib/asm/ast.mli: Format
