lib/asm/parser.ml: Ast Ddg_isa Format List String
