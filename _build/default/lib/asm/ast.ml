type operand =
  | Int of int
  | Float of float
  | Reg of int
  | Freg of int
  | Sym of string
  | Ind of indirect

and indirect = { offset : offset; base : int }

and offset = Ofs_int of int | Ofs_sym of string

type item =
  | Label of string
  | Directive of string * operand list
  | Insn of string * operand list

type line = { lineno : int; item : item }

let pp_offset ppf = function
  | Ofs_int i -> Format.pp_print_int ppf i
  | Ofs_sym s -> Format.pp_print_string ppf s

let pp_operand ppf = function
  | Int i -> Format.pp_print_int ppf i
  | Float x -> Format.pp_print_float ppf x
  | Reg r -> Format.pp_print_string ppf (Ddg_isa.Reg.name r)
  | Freg f -> Format.pp_print_string ppf (Ddg_isa.Reg.fname f)
  | Sym s -> Format.pp_print_string ppf s
  | Ind { offset; base } ->
      Format.fprintf ppf "%a(%s)" pp_offset offset (Ddg_isa.Reg.name base)

let pp_operands ppf ops =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
    pp_operand ppf ops

let pp_item ppf = function
  | Label l -> Format.fprintf ppf "%s:" l
  | Directive (d, ops) -> Format.fprintf ppf ".%s %a" d pp_operands ops
  | Insn (m, ops) -> Format.fprintf ppf "%s %a" m pp_operands ops
