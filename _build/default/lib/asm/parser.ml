exception Error of { lineno : int; msg : string }

let fail lineno fmt = Format.kasprintf (fun msg -> raise (Error { lineno; msg })) fmt

(* --- Tokenizer (per line) ---------------------------------------------- *)

type token =
  | Tword of string          (* identifier, mnemonic, register name *)
  | Tint of int
  | Tfloat of float
  | Tcolon
  | Tlparen
  | Trparen
  | Tdot_word of string      (* directive name without the dot *)

let is_word_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
  || c = '_' || c = '.'

let is_digit c = c >= '0' && c <= '9'

(* A number token starts with a digit, '-', '+' or '.'; it is a float when
   it contains '.', 'e' or 'E' (outside a 0x prefix). *)
let scan_number lineno s i =
  let n = String.length s in
  let start = i in
  let i = if i < n && (s.[i] = '-' || s.[i] = '+') then i + 1 else i in
  let hex = i + 1 < n && s.[i] = '0' && (s.[i + 1] = 'x' || s.[i + 1] = 'X') in
  let rec consume j seen_dot seen_exp =
    if j >= n then j
    else
      let c = s.[j] in
      if is_digit c then consume (j + 1) seen_dot seen_exp
      else if hex && ((c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F') || c = 'x' || c = 'X')
      then consume (j + 1) seen_dot seen_exp
      else if (not hex) && c = '.' && not seen_dot then consume (j + 1) true seen_exp
      else if (not hex) && (c = 'e' || c = 'E') && not seen_exp then
        let j' = if j + 1 < n && (s.[j + 1] = '-' || s.[j + 1] = '+') then j + 2 else j + 1 in
        consume j' seen_dot true
      else j
  in
  let stop = consume i false false in
  let text = String.sub s start (stop - start) in
  let tok =
    if (not hex) && (String.contains text '.' || String.contains text 'e'
                     || String.contains text 'E')
    then
      match float_of_string_opt text with
      | Some x -> Tfloat x
      | None -> fail lineno "bad float literal %S" text
    else
      match int_of_string_opt text with
      | Some k -> Tint k
      | None -> fail lineno "bad integer literal %S" text
  in
  (tok, stop)

let tokenize lineno s =
  let n = String.length s in
  let rec go i acc =
    if i >= n then List.rev acc
    else
      match s.[i] with
      | ' ' | '\t' | '\r' | ',' -> go (i + 1) acc
      | '#' | ';' -> List.rev acc
      | ':' -> go (i + 1) (Tcolon :: acc)
      | '(' -> go (i + 1) (Tlparen :: acc)
      | ')' -> go (i + 1) (Trparen :: acc)
      | '.' when i + 1 < n && not (is_digit s.[i + 1]) ->
          let stop = ref (i + 1) in
          while !stop < n && is_word_char s.[!stop] do incr stop done;
          go !stop (Tdot_word (String.sub s (i + 1) (!stop - i - 1)) :: acc)
      | c when is_digit c || c = '-' || c = '+' || c = '.' ->
          let tok, stop = scan_number lineno s i in
          go stop (tok :: acc)
      | c when is_word_char c ->
          let stop = ref i in
          while !stop < n && is_word_char s.[!stop] do incr stop done;
          go !stop (Tword (String.sub s i (!stop - i)) :: acc)
      | c -> fail lineno "unexpected character %C" c
  in
  go 0 []

(* --- Parser ------------------------------------------------------------ *)

let operand_of_token lineno tok rest =
  match tok with
  | Tint i -> (Ast.Int i, rest)
  | Tfloat x -> (Ast.Float x, rest)
  | Tword w -> (
      match Ddg_isa.Reg.of_name w with
      | Some r -> (Ast.Reg r, rest)
      | None -> (
          match Ddg_isa.Reg.fof_name w with
          | Some f -> (Ast.Freg f, rest)
          | None -> (Ast.Sym w, rest)))
  | Tcolon | Tlparen | Trparen | Tdot_word _ ->
      fail lineno "expected an operand"

(* Operands: plain, or indirect  off(base) / sym(base) / (base). *)
let rec parse_operands lineno toks acc =
  match toks with
  | [] -> List.rev acc
  | Tlparen :: _ -> parse_indirect lineno (Ast.Ofs_int 0) toks acc
  | tok :: rest -> (
      let op, rest = operand_of_token lineno tok rest in
      match op, rest with
      | Ast.Int i, Tlparen :: _ ->
          parse_indirect lineno (Ast.Ofs_int i) rest acc
      | Ast.Sym s, Tlparen :: _ ->
          parse_indirect lineno (Ast.Ofs_sym s) rest acc
      | _ -> parse_operands lineno rest (op :: acc))

and parse_indirect lineno offset toks acc =
  match toks with
  | Tlparen :: Tword w :: Trparen :: rest -> (
      match Ddg_isa.Reg.of_name w with
      | Some base ->
          parse_operands lineno rest (Ast.Ind { offset; base } :: acc)
      | None -> fail lineno "bad base register %S" w)
  | _ -> fail lineno "malformed indirect operand"

let rec parse_line lineno s =
  match tokenize lineno s with
  | [] -> []
  | Tword l :: Tcolon :: rest ->
      let label = { Ast.lineno; item = Ast.Label l } in
      if rest = [] then [ label ]
      else label :: parse_tail lineno rest
  | toks -> parse_tail lineno toks

and parse_tail lineno = function
  | Tdot_word d :: rest ->
      [ { Ast.lineno; item = Ast.Directive (d, parse_operands lineno rest []) } ]
  | Tword m :: rest ->
      [ { Ast.lineno; item = Ast.Insn (m, parse_operands lineno rest []) } ]
  | _ -> fail lineno "expected a label, directive or instruction"

let parse source =
  let lines = String.split_on_char '\n' source in
  List.concat (List.mapi (fun i line -> parse_line (i + 1) line) lines)
