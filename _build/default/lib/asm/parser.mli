(** Line-oriented parser for assembly source.

    Syntax, one item per line (a label may share a line with an instruction
    or directive):

    {v
            .data
    A:      .word 1 2 3
    PI:     .float 3.14
    buf:    .space 400
            .text
    main:   li   t0, 5
            la   t1, A
    loop:   addi t0, t0, -1
            bne  t0, zero, loop
            halt
    v}

    Comments run from [#] or [;] to end of line. Operand separators
    (commas) are optional. Numbers may be decimal, negative, 0x-hex, or
    floating point ([1.5], [2e3], [.5]). Register names are symbolic
    ([sp], [t0]) or numeric ([r13], [f5]). *)

exception Error of { lineno : int; msg : string }

val parse : string -> Ast.line list
(** Parse a whole source file. @raise Error on the first malformed line. *)
