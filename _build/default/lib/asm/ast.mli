(** Abstract syntax of assembly source, as produced by {!Parser}.

    Operands are still symbolic at this stage: labels are unresolved and
    mnemonics are plain strings. {!Assembler} turns a list of items into a
    {!Program.t} with absolute instruction indices and data addresses. *)

type operand =
  | Int of int              (** integer literal (decimal or 0x-hex) *)
  | Float of float          (** floating-point literal *)
  | Reg of int              (** integer register *)
  | Freg of int             (** floating-point register *)
  | Sym of string           (** symbolic label reference *)
  | Ind of indirect         (** [off(base)] memory operand *)

and indirect = { offset : offset; base : int }

and offset = Ofs_int of int | Ofs_sym of string

(** A single source item, tagged with its 1-based source line. *)
type item =
  | Label of string
  | Directive of string * operand list
      (** [.data], [.text], [.word w…], [.float x…], [.space n] *)
  | Insn of string * operand list
      (** mnemonic + operands, e.g. [Insn ("add", [Reg 4; Reg 5; Reg 6])] *)

type line = { lineno : int; item : item }

val pp_operand : Format.formatter -> operand -> unit
val pp_item : Format.formatter -> item -> unit
