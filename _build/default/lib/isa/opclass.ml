type t =
  | Int_alu
  | Int_multiply
  | Int_divide
  | Fp_add_sub
  | Fp_multiply
  | Fp_divide
  | Load_store
  | Syscall
  | Control

let all =
  [ Int_alu; Int_multiply; Int_divide; Fp_add_sub; Fp_multiply; Fp_divide;
    Load_store; Syscall; Control ]

let latency = function
  | Int_alu -> 1
  | Int_multiply -> 6
  | Int_divide -> 12
  | Fp_add_sub -> 6
  | Fp_multiply -> 6
  | Fp_divide -> 12
  | Load_store -> 1
  | Syscall -> 1
  | Control -> 1

let creates_value = function
  | Control -> false
  | Int_alu | Int_multiply | Int_divide | Fp_add_sub | Fp_multiply
  | Fp_divide | Load_store | Syscall -> true

let equal (a : t) (b : t) = a = b

let pp ppf t =
  let s =
    match t with
    | Int_alu -> "Integer ALU"
    | Int_multiply -> "Integer Multiply"
    | Int_divide -> "Integer Division"
    | Fp_add_sub -> "Floating Point Add/Sub"
    | Fp_multiply -> "Floating Point Multiply"
    | Fp_divide -> "Floating Point Division"
    | Load_store -> "Load/Store"
    | Syscall -> "System Calls"
    | Control -> "Control"
  in
  Format.pp_print_string ppf s

let to_string t = Format.asprintf "%a" pp t
