(** The simulated address-space layout and address classification.

    The simulator places statically-allocated data at [data_base], grows the
    heap upward from [heap_base] (via the [sbrk] system call) and grows the
    stack downward from [stack_top]. Paragraph classifies every memory
    location into a segment so that the Rename-Stack and Rename-Data
    switches can be applied independently (paper section 3.2). *)

val data_base : int
(** Base byte address of the static data segment. *)

val heap_base : int
(** Base byte address of the heap; everything in [[heap_base, stack_limit)]
    is heap. *)

val stack_limit : int
(** Lowest address considered part of the stack segment. *)

val stack_top : int
(** Initial stack pointer (exclusive top of the stack segment). *)

val word_size : int
(** Bytes per machine word (4). *)

val classify : int -> Loc.segment
(** [classify addr] names the segment containing byte address [addr].
    Addresses below [heap_base] are [Data], addresses in
    [[heap_base, stack_limit)] are [Heap], and addresses at or above
    [stack_limit] are [Stack]. *)

val storage_class_of_loc : Loc.t -> Loc.storage_class
(** The storage class a renaming switch applies to: registers, stack
    memory, or (static + heap) data memory. *)
