let data_base = 0x1000_0000
let heap_base = 0x4000_0000
let stack_limit = 0x7000_0000
let stack_top = 0x7fff_fff0
let word_size = 4

let classify addr : Loc.segment =
  if addr >= stack_limit then Stack
  else if addr >= heap_base then Heap
  else Data

let storage_class_of_loc : Loc.t -> Loc.storage_class = function
  | Reg _ | Freg _ -> Register
  | Mem a -> (
      match classify a with
      | Stack -> Stack_memory
      | Heap | Data -> Data_memory)
