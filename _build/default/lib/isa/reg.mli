(** Integer and floating-point register conventions.

    The register file follows a MIPS-like convention: 32 integer registers
    and 32 floating-point registers. Register [r0] is hardwired to zero.
    The software conventions below are used by the Mini-C code generator
    and by the assembler's symbolic register names. *)

val count : int
(** Registers per file (32). *)

(** r0: always zero; writes are discarded. *)
val zero : int

(** r2: function result / syscall number. *)
val v0 : int

(** r3: second result register. *)
val v1 : int

(** r4: first argument register. *)
val a0 : int

(** r5 *)
val a1 : int

(** r6 *)
val a2 : int

(** r7 *)
val a3 : int

(** r8: first caller-saved temporary. *)
val t_first : int

(** r15: last caller-saved temporary. *)
val t_last : int

(** r16: first callee-saved register. *)
val s_first : int

(** r23: last callee-saved register. *)
val s_last : int

(** r28: global pointer. *)
val gp : int

(** r29: stack pointer. *)
val sp : int

(** r30: frame pointer. *)
val fp : int

(** r31: return address. *)
val ra : int


(** f0: floating-point result register. *)
val f_result : int

(** f12: first floating-point argument register. *)
val f_arg : int

(** f4: first floating-point temporary. *)
val ft_first : int

(** f11: last floating-point temporary. *)
val ft_last : int

(** f20: first callee-saved floating-point register. *)
val fs_first : int

(** f27: last callee-saved floating-point register. *)
val fs_last : int


val name : int -> string
(** Symbolic name of integer register [i], e.g. [name 29 = "sp"]. *)

val fname : int -> string
(** Name of floating-point register [i], e.g. ["f4"]. *)

val of_name : string -> int option
(** Parse an integer register name: either numeric ("r13") or symbolic
    ("sp", "a0", "t3", ...). *)

val fof_name : string -> int option
(** Parse a floating-point register name ("f0".."f31"). *)
