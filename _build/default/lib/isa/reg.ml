let count = 32

let zero = 0
let at = 1
let v0 = 2
let v1 = 3
let a0 = 4
let a1 = 5
let a2 = 6
let a3 = 7
let t_first = 8
let t_last = 15
let s_first = 16
let s_last = 23
let gp = 28
let sp = 29
let fp = 30
let ra = 31

let f_result = 0
let f_arg = 12
let ft_first = 4
let ft_last = 11
let fs_first = 20
let fs_last = 27

let names =
  [| "zero"; "at"; "v0"; "v1"; "a0"; "a1"; "a2"; "a3";
     "t0"; "t1"; "t2"; "t3"; "t4"; "t5"; "t6"; "t7";
     "s0"; "s1"; "s2"; "s3"; "s4"; "s5"; "s6"; "s7";
     "t8"; "t9"; "k0"; "k1"; "gp"; "sp"; "fp"; "ra" |]

let name i =
  if i >= 0 && i < count then names.(i) else Printf.sprintf "r%d" i

let fname i = Printf.sprintf "f%d" i

let of_name s =
  let numeric prefix =
    let n = String.length prefix in
    if String.length s > n && String.sub s 0 n = prefix then
      match int_of_string_opt (String.sub s n (String.length s - n)) with
      | Some i when i >= 0 && i < count -> Some i
      | Some _ | None -> None
    else None
  in
  match numeric "r" with
  | Some i -> Some i
  | None ->
      let rec find i =
        if i >= count then None
        else if String.equal names.(i) s then Some i
        else find (i + 1)
      in
      find 0

let fof_name s =
  if String.length s > 1 && s.[0] = 'f' then
    match int_of_string_opt (String.sub s 1 (String.length s - 1)) with
    | Some i when i >= 0 && i < count -> Some i
    | Some _ | None -> None
  else None

(* [at] is exported for completeness of the convention table even though the
   assembler never synthesises instructions that need it. *)
let _ = at
