lib/isa/reg.ml: Array Printf String
