lib/isa/insn.ml: Format List Loc Opclass Reg
