lib/isa/insn.mli: Format Loc Opclass
