lib/isa/segment.mli: Loc
