lib/isa/loc.ml: Format Int
