lib/isa/segment.ml: Loc
