lib/isa/reg.mli:
