(* Bit 0 of an event's annotation word flags the destination as final;
   bit (j+1) flags source operand j. *)
type annotations = int array

let annotate trace =
  let n = Ddg_sim.Trace.length trace in
  let flags = Array.make n 0 in
  let seen = Hashtbl.create 4096 in
  let fresh loc =
    if Hashtbl.mem seen loc then false
    else begin
      Hashtbl.replace seen loc ();
      true
    end
  in
  for i = n - 1 downto 0 do
    let e = Ddg_sim.Trace.get trace i in
    let word = ref 0 in
    (match e.dest with
    | Some d -> if fresh d then word := !word lor 1
    | None -> ());
    List.iteri
      (fun j src -> if fresh src then word := !word lor (1 lsl (j + 1)))
      e.srcs;
    flags.(i) <- !word
  done;
  flags

let final_dest (a : annotations) i = a.(i) land 1 <> 0
let final_src (a : annotations) i j = a.(i) land (1 lsl (j + 1)) <> 0

let analyze config trace =
  let annotations = annotate trace in
  let analyzer = Analyzer.create config in
  let peak = ref 0 in
  Ddg_sim.Trace.iteri
    (fun i e ->
      Analyzer.feed analyzer e;
      let word = annotations.(i) in
      if word <> 0 then begin
        (match e.dest with
        | Some d when word land 1 <> 0 -> Analyzer.evict analyzer d
        | Some _ | None -> ());
        List.iteri
          (fun j src ->
            if word land (1 lsl (j + 1)) <> 0 then
              Analyzer.evict analyzer src)
          e.srcs
      end;
      let size = Analyzer.live_well_size analyzer in
      if size > !peak then peak := size)
    trace;
  (Analyzer.finish analyzer, !peak)
