(** Functional-unit pools for resource dependencies (paper Figure 4).

    When limits are finite, an operation that is data-ready at level [l]
    issues at the first level [l' >= l] at which both the total pool and
    its class pool have a free unit, and every unit it acquires is held
    for that level only (fully pipelined units). The paper's two-generic-
    FU example in Figure 4 corresponds to [{ total = Some 2; ... }]. *)

type t

val create : Config.fu_limits -> t

val unlimited : t -> bool

val place : t -> Ddg_isa.Opclass.t -> int -> int
(** [place t cls ready_level] finds the issue level for an operation of
    class [cls] that is ready at [ready_level], acquires the units, and
    returns the level. With unlimited pools this is the identity on
    [ready_level]. *)
