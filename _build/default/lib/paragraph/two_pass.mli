(** The paper's two-pass trace processing mode (section 3.2, dead-value
    method 1).

    "Process the trace in two passes, first in the reverse direction and
    then in the forward direction. If the instructions are processed in
    reverse, the first occurrence of a value is its last use, and value
    lifetime information can be easily inserted into the trace for use on
    a second, forward pass through the trace."

    The reverse pass marks, for every event, which of its location
    references (sources and destination) are the {e final} reference to
    that location in the whole trace. The forward pass is the ordinary
    analysis, except that the live well evicts a location immediately
    after its final reference — so its working set tracks the number of
    locations with future references rather than every location ever
    touched (the paper's single-forward-pass mode needed 32 MBytes for
    exactly this reason).

    Results are identical to {!Analyzer.analyze} except for the
    [live_locations] field, which here reports the {e peak} live-well
    occupancy; the suite property-checks the equivalence. *)

(** Per-event finality annotations from the reverse pass. *)
type annotations

val annotate : Ddg_sim.Trace.t -> annotations
(** The reverse pass. O(trace) time; O(distinct locations) space. *)

val final_dest : annotations -> int -> bool
(** Is event [i]'s destination its location's final reference? *)

val final_src : annotations -> int -> int -> bool
(** Is event [i]'s [j]-th source operand its location's final reference?
    (When the same location appears both as a source and the destination
    of event [i], the destination carries the flag.) *)

val analyze :
  Config.t -> Ddg_sim.Trace.t -> Analyzer.stats * int
(** Both passes; returns the statistics (with [live_locations] = final
    occupancy, which is 0 — everything has been evicted) and the peak
    live-well occupancy. *)
