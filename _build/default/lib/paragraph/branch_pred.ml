type t =
  | Perfect
  | Static of bool                    (* predicted direction *)
  | Two_bit of { mask : int; counters : Bytes.t }

let create : Config.branch_policy -> t = function
  | Config.Perfect -> Perfect
  | Config.Predict_taken -> Static true
  | Config.Predict_not_taken -> Static false
  | Config.Two_bit bits ->
      let bits = max 1 (min 24 bits) in
      let size = 1 lsl bits in
      (* counters start weakly taken (2) *)
      Two_bit { mask = size - 1; counters = Bytes.make size '\002' }

let predicts_perfectly = function
  | Perfect -> true
  | Static _ | Two_bit _ -> false

let mispredicted t ~pc ~taken =
  match t with
  | Perfect -> false
  | Static p -> p <> taken
  | Two_bit { mask; counters } ->
      let i = pc land mask in
      let c = Char.code (Bytes.get counters i) in
      let predicted = c >= 2 in
      let c' = if taken then min 3 (c + 1) else max 0 (c - 1) in
      Bytes.set counters i (Char.chr c');
      predicted <> taken
