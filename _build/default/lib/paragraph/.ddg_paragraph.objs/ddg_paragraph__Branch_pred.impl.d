lib/paragraph/branch_pred.ml: Bytes Char Config
