lib/paragraph/live_well.mli: Ddg_isa
