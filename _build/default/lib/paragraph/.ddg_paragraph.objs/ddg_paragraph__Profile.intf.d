lib/paragraph/profile.mli: Format
