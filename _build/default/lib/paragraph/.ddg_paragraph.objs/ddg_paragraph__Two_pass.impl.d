lib/paragraph/two_pass.ml: Analyzer Array Ddg_sim Hashtbl List
