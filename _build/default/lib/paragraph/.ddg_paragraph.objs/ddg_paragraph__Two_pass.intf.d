lib/paragraph/two_pass.mli: Analyzer Config Ddg_sim
