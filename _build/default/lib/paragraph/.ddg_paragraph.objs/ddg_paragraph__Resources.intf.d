lib/paragraph/resources.mli: Config Ddg_isa
