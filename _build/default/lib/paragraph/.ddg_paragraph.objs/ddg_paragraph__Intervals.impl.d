lib/paragraph/intervals.ml: Array Profile
