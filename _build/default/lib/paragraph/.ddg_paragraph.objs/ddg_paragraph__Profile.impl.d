lib/paragraph/profile.ml: Array Float Format List
