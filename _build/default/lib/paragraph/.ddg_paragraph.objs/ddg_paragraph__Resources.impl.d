lib/paragraph/resources.ml: Config Ddg_isa Fun Hashtbl List Option
