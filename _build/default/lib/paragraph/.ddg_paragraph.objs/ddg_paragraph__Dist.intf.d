lib/paragraph/dist.mli: Format
