lib/paragraph/config.mli: Ddg_isa
