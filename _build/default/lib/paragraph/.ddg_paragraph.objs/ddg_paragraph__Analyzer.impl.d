lib/paragraph/analyzer.ml: Branch_pred Config Ddg_isa Ddg_sim Dist Format Intervals List Live_well Loc Opclass Option Profile Resources Segment Window
