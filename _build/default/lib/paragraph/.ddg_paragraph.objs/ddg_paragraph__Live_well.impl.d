lib/paragraph/live_well.ml: Ddg_isa Hashtbl
