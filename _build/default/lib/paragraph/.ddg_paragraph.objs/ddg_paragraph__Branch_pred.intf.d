lib/paragraph/branch_pred.mli: Config
