lib/paragraph/window.mli:
