lib/paragraph/ddg.ml: Array Branch_pred Buffer Config Ddg_isa Ddg_sim Hashtbl List Loc Opclass Printf Queue Resources Segment
