lib/paragraph/config.ml: Ddg_isa Printf
