lib/paragraph/analyzer.mli: Config Ddg_isa Ddg_sim Dist Format Profile
