lib/paragraph/ddg.mli: Config Ddg_isa Ddg_sim
