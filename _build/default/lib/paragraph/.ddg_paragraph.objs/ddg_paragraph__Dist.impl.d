lib/paragraph/dist.ml: Array Format List
