lib/paragraph/intervals.mli: Profile
