lib/paragraph/window.ml: Array
