(** The instruction window: a sliding view of W contiguous trace
    instructions (paper §3.2, Figure 6).

    The analyzer pushes the completion level of every processed trace
    event. Once the window is full, each push displaces the oldest event;
    the displaced event's level is returned and becomes a firewall — no
    later instruction may be placed above it. This caps the DDG width at
    W operations per level. *)

type t

val create : int -> t
(** [create w] for a window of [w] instructions; [w >= 1].
    @raise Invalid_argument otherwise. *)

val capacity : t -> int
val length : t -> int
(** Current occupancy (at most [capacity]). *)

val make_room : t -> int option
(** If the window is full, displace the oldest event and return its level
    (the firewall level for the instruction about to enter); [None] when
    there is room already. Call before placing the incoming instruction. *)

val push : t -> int -> int option
(** Push the newest event's level. If the window is full this displaces
    the oldest event and returns its level — prefer
    {!make_room}-then-[push] so the firewall is visible to the incoming
    instruction's own placement. *)
