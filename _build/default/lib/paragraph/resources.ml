(* One pool = a capacity plus a per-level usage table. Finding the first
   level with a free unit uses a path-compressed "next candidate" map:
   once a level saturates it points past itself, so repeated searches
   over a dense prefix are amortised nearly O(1) instead of rescanning
   (a linear scan is quadratic when capacity is small and every
   operation is ready early, e.g. one universal FU). *)
type pool = {
  capacity : int;
  used : (int, int) Hashtbl.t;
  next_free : (int, int) Hashtbl.t;  (* level -> first candidate >= level *)
}

let make_pool capacity =
  { capacity; used = Hashtbl.create 1024; next_free = Hashtbl.create 1024 }

let pool_used p level =
  match Hashtbl.find_opt p.used level with Some n -> n | None -> 0

let pool_free p level = pool_used p level < p.capacity

(* find the first level >= [level] with spare capacity, compressing the
   candidate chain behind us *)
let rec pool_first_free p level =
  match Hashtbl.find_opt p.next_free level with
  | Some hint when hint > level ->
      let target = pool_first_free p hint in
      if target <> hint then Hashtbl.replace p.next_free level target;
      target
  | Some _ | None ->
      if pool_free p level then level
      else begin
        let target = pool_first_free p (level + 1) in
        Hashtbl.replace p.next_free level target;
        target
      end

let pool_acquire p level =
  let n = pool_used p level + 1 in
  Hashtbl.replace p.used level n;
  if n >= p.capacity then Hashtbl.replace p.next_free level (level + 1)

type t = {
  total : pool option;
  int_units : pool option;
  fp_units : pool option;
  mem_units : pool option;
}

let create (limits : Config.fu_limits) =
  let mk = Option.map make_pool in
  {
    total = mk limits.total;
    int_units = mk limits.int_units;
    fp_units = mk limits.fp_units;
    mem_units = mk limits.mem_units;
  }

let unlimited t =
  t.total = None && t.int_units = None && t.fp_units = None
  && t.mem_units = None

let class_pool t (cls : Ddg_isa.Opclass.t) =
  match cls with
  | Int_alu | Int_multiply | Int_divide -> t.int_units
  | Fp_add_sub | Fp_multiply | Fp_divide -> t.fp_units
  | Load_store -> t.mem_units
  | Syscall | Control -> None

let place t cls ready_level =
  let pools = List.filter_map Fun.id [ t.total; class_pool t cls ] in
  match pools with
  | [] -> ready_level
  | [ p ] ->
      let level = pool_first_free p ready_level in
      pool_acquire p level;
      level
  | pools ->
      (* iterate until a level is free in every pool *)
      let rec find level =
        let level' =
          List.fold_left (fun l p -> max l (pool_first_free p l)) level pools
        in
        if level' = level then level else find level'
      in
      let level = find ready_level in
      List.iter (fun p -> pool_acquire p level) pools;
      level
