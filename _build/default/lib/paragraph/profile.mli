(** The parallelism profile: operations per DDG level.

    "Plotting the number of operations by level in the topologically
    sorted DDG yields the parallelism profile of the DDG" (paper
    section 2.3). A profile is a histogram indexed by completion level.
    Because a long trace can span millions of levels, the histogram has a
    fixed number of slots and doubles its {e bucket width} whenever the
    level range overflows; readers then see the average number of
    operations per level within each bucket — exactly the paper's
    "a range of Ldest values is mapped to each distribution entry, and in
    the final output, the average number of operations per level within
    the range is computed". *)

type t

val create : ?slots:int -> unit -> t
(** [slots] (default 65536) is the fixed number of histogram slots; it
    must be at least 2. *)

val add : t -> int -> unit
(** Record one operation completing at a level (0-based). Negative levels
    are rejected with [Invalid_argument]. *)

val add_range : t -> int -> int -> unit
(** [add_range t lo hi] adds one unit to every level in [lo..hi]
    (inclusive) — the profile then reads as "live values per level". Cost
    is proportional to the number of buckets spanned; for bulk interval
    data prefer {!Intervals}, which is O(1) per interval.
    @raise Invalid_argument if [lo < 0] or [hi < lo]. *)

val of_buckets : width:int -> max_level:int -> total:int -> int array -> t
(** Advanced: construct a profile directly from bucket counts (bucket [i]
    covers levels [i*width .. (i+1)*width - 1]); [max_level] is [-1] for
    an empty profile. Used by {!Intervals} and by deserialisers.
    @raise Invalid_argument if [width] is not a power of two or arguments
    are inconsistent. *)

val total_ops : t -> int
val levels : t -> int
(** Number of DDG levels spanned: highest level seen + 1; 0 when empty. *)

val bucket_width : t -> int
(** Current width (a power of two). *)

val average_parallelism : t -> float
(** [total_ops / levels]; 0 when empty. *)

val series : t -> (int * int * float) list
(** [(level_lo, level_hi, avg_ops_per_level)] for each non-empty-range
    bucket up to the highest level seen, in order. Levels are 0-based and
    inclusive. *)

val ops_in_bucket : t -> int -> int
(** Raw count in slot [i] (for tests). *)

val max_ops_per_level : t -> float
(** Peak of the profile (averaged within buckets when coalesced). *)

val pp : Format.formatter -> t -> unit
(** Compact textual rendering of the series. *)
