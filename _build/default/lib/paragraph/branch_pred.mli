(** Branch predictors for the control-dependency extension.

    The paper runs every experiment with perfect control flow but notes
    that its firewall mechanism "can also be used to represent the effect
    of a mispredicted conditional branch" (§3.2). This module provides the
    predictors used by that extension: static taken / not-taken and a
    classic 2-bit saturating-counter table indexed by pc. *)

type t

val create : Config.branch_policy -> t

val predicts_perfectly : t -> bool
(** True for {!Config.Perfect}: no branch ever constrains the DDG. *)

val mispredicted : t -> pc:int -> taken:bool -> bool
(** Record one executed conditional branch and report whether the
    predictor got it wrong. Always false for [Perfect]. *)
