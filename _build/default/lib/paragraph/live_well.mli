(** The live well: Paragraph's hash table of live values (paper §3.2).

    Each live value is keyed by the storage location currently holding it
    and records the DDG level at which it was created, the deepest level at
    which it has been used, and its use count. When an instruction is
    processed, its source values are located here by register number or
    memory address; the destination location's previous value is retired
    (yielding its lifetime and degree-of-sharing statistics) and replaced.

    Values that existed before execution began — pre-initialised registers
    or DATA-segment words — are materialised on first reference at the
    level immediately preceding the topologically highest placeable level,
    so they never delay any computation (paper's first special case). *)

type t

(** Statistics of a retired (overwritten or final) computed value. *)
type retirement = {
  created : int;   (** DDG level at which the value was created *)
  last_use : int;  (** deepest level at which it was read; [created] if
                       never read *)
  lifetime : int;
      (** [last_use - created]; 0 if never used *)
  uses : int;  (** number of operand reads of the value *)
}

val create : unit -> t

val source_level : t -> Ddg_isa.Loc.t -> highest_level:int -> int
(** Level at which the value in a location was created. If the location
    has never been written, a pre-existing value is inserted at
    [highest_level - 1] and that level returned. *)

val record_use : t -> Ddg_isa.Loc.t -> level:int -> unit
(** Note that the value in the location was consumed by an operation
    completing at [level]. The location must be present (call
    {!source_level} first). *)

val storage_constraint : t -> Ddg_isa.Loc.t -> int option
(** [Ddest] for the paper's storage-dependency rule: the deepest level at
    which the value currently in the location was created or used, or
    [None] if the location is empty. *)

val define : t -> Ddg_isa.Loc.t -> level:int -> retirement option
(** Bind a new value, created at [level], to the location. Returns the
    retirement record of the previous {e computed} value, or [None] if
    the location was empty or held a pre-existing value. *)

val remove : t -> Ddg_isa.Loc.t -> retirement option
(** Evict a location, returning the retirement record of the computed
    value it held (if any). Used by the two-pass analysis mode, which
    knows from its reverse pass that the location will never be
    referenced again. *)

val retire_all : t -> retirement list
(** Retirement records for every computed value still live — called once
    at the end of a trace so final values contribute to the lifetime and
    sharing distributions. *)

val size : t -> int
(** Number of distinct locations present (live values + pre-existing). *)
