(** Explicit dynamic dependency graphs for small traces.

    The streaming {!Analyzer} never materialises the graph — that is what
    makes it scale to arbitrarily long traces. For worked examples,
    visualisation and tests, this module builds the DDG explicitly: every
    placed operation becomes a node, and every dependency that constrained
    its placement becomes a typed edge (true-data, storage, or control).

    Placement semantics are identical to {!Analyzer} — a property test in
    the suite checks that both compute the same critical path and profile
    on arbitrary traces — but memory grows with trace length, so use this
    only for traces of up to ~10^5 events. *)

type edge_kind =
  | True_data  (** RAW: the value created at the edge's head is consumed *)
  | Storage    (** WAR/WAW: location reuse when renaming is disabled *)
  | Control    (** firewall: system call or mispredicted branch *)

type node = {
  id : int;              (** dense node index, in trace order *)
  trace_index : int;     (** position of the event in the input trace *)
  pc : int;
  op_class : Ddg_isa.Opclass.t;
  dest : Ddg_isa.Loc.t option;
  level : int;           (** completion level (0-based) *)
}

type edge = { from_node : int; to_node : int; kind : edge_kind }
(** [to_node] depends on [from_node]. *)

type t

val build : Config.t -> Ddg_sim.Trace.t -> t

val nodes : t -> node array
val edges : t -> edge list
val critical_path : t -> int
(** Number of levels = deepest completion level + 1. *)

val ops_per_level : t -> int array
(** The (exact, unbucketed) parallelism profile: index = level. *)

val available_parallelism : t -> float

val predecessors : t -> int -> edge list
(** Edges into a node. *)

val critical_chain : t -> node list
(** One maximal dependence chain ending at a deepest node, deepest first:
    from a node at the maximum level, repeatedly step to the predecessor
    at the highest level. Useful for diagnosing {e what} limits the
    parallelism of a trace (loop counters? accumulators? storage reuse?). *)

val chain_summary : t -> (Ddg_isa.Opclass.t * int) list
(** Operation-class histogram of {!critical_chain}. *)

(** Cross-processor data sharing for a partitioned execution (paper
    section 2.3: "by measuring how much data flows from the nodes in one
    subgraph to another ... we can measure the degree of data sharing
    amongst the processors"). *)
type sharing = {
  processors : int;
  internal_edges : int;   (** true-data edges within one partition *)
  cross_edges : int;      (** true-data edges between partitions *)
  per_processor_nodes : int array;
}

val partition_sharing :
  t -> processors:int -> scheme:[ `Contiguous | `Round_robin ] -> sharing
(** Assign nodes to [processors] either in contiguous trace-order blocks
    or round-robin, and count how many true-data edges cross partitions.
    Storage and control edges are excluded — they are artefacts of the
    serial machine, not data flow. @raise Invalid_argument if
    [processors < 1]. *)

val to_dot : ?node_label:(node -> string) -> t -> string
(** Graphviz rendering: true-data edges solid, storage edges with the
    paper's "gray bubble" (gray, dot arrowhead), control edges dashed;
    nodes ranked by DDG level. *)
