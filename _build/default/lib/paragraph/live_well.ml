module Table = Hashtbl.Make (struct
  type t = Ddg_isa.Loc.t

  let equal = Ddg_isa.Loc.equal
  let hash = Ddg_isa.Loc.hash
end)

type entry = {
  mutable create_level : int;
  mutable deepest_use : int;   (* = create_level until first use *)
  mutable uses : int;
  mutable computed : bool;     (* false for pre-existing values *)
}

type retirement = { created : int; last_use : int; lifetime : int; uses : int }

type t = entry Table.t

let create () : t = Table.create 4096

let source_level t loc ~highest_level =
  match Table.find_opt t loc with
  | Some e -> e.create_level
  | None ->
      let level = highest_level - 1 in
      Table.replace t loc
        { create_level = level; deepest_use = level; uses = 0; computed = false };
      level

let record_use t loc ~level =
  match Table.find_opt t loc with
  | Some e ->
      if level > e.deepest_use then e.deepest_use <- level;
      e.uses <- e.uses + 1
  | None -> invalid_arg "Live_well.record_use: location not present"

let storage_constraint t loc =
  match Table.find_opt t loc with
  | Some e -> Some (max e.create_level e.deepest_use)
  | None -> None

let retirement_of e =
  {
    created = e.create_level;
    last_use = max e.create_level e.deepest_use;
    lifetime = max 0 (e.deepest_use - e.create_level);
    uses = e.uses;
  }

let define t loc ~level =
  match Table.find_opt t loc with
  | Some e ->
      let retired = if e.computed then Some (retirement_of e) else None in
      e.create_level <- level;
      e.deepest_use <- level;
      e.uses <- 0;
      e.computed <- true;
      retired
  | None ->
      Table.replace t loc
        { create_level = level; deepest_use = level; uses = 0; computed = true };
      None

let remove t loc =
  match Table.find_opt t loc with
  | Some e ->
      Table.remove t loc;
      if e.computed then Some (retirement_of e) else None
  | None -> None

let retire_all t =
  Table.fold (fun _ e acc -> if e.computed then retirement_of e :: acc else acc) t []

let size t = Table.length t
