open Ddg_isa

type stats = {
  events : int;
  placed_ops : int;
  syscalls : int;
  critical_path : int;
  available_parallelism : float;
  profile : Profile.t;
  storage_profile : Profile.t;
  lifetimes : Dist.t;
  sharing : Dist.t;
  live_locations : int;
  mispredicts : int;
}

type t = {
  config : Config.t;
  live_well : Live_well.t;
  profile : Profile.t;
  liveness : Intervals.t;
  lifetimes : Dist.t;
  sharing : Dist.t;
  window : Window.t option;
  resources : Resources.t;
  predictor : Branch_pred.t;
  mutable highest_level : int;         (* first placeable level *)
  mutable deepest_level : int;         (* deepest completion level used *)
  mutable events : int;
  mutable placed : int;
  mutable syscalls : int;
  mutable mispredicts : int;
}

let create (config : Config.t) =
  {
    config;
    live_well = Live_well.create ();
    profile = Profile.create ();
    liveness = Intervals.create ();
    lifetimes = Dist.create ();
    sharing = Dist.create ();
    window = Option.map Window.create config.window;
    resources = Resources.create config.fu;
    predictor = Branch_pred.create config.branch;
    highest_level = 0;
    deepest_level = -1;
    events = 0;
    placed = 0;
    syscalls = 0;
    mispredicts = 0;
  }

let storage_dependencies_apply config loc =
  let { Config.registers; stack; data } = config.Config.renaming in
  match Segment.storage_class_of_loc loc with
  | Loc.Register -> not registers
  | Loc.Stack_memory -> not stack
  | Loc.Data_memory -> not data

let retire t (r : Live_well.retirement) =
  Dist.add t.lifetimes r.lifetime;
  Dist.add t.sharing r.uses;
  (* the value occupies one storage location from its creation level to
     its last use: the storage profile reads as live values per level *)
  if r.created >= 0 then Intervals.add t.liveness ~lo:r.created ~hi:r.last_use

(* Window bookkeeping: every trace event occupies one slot. When the
   incoming event displaces the oldest one, the displaced event's
   completion level becomes a firewall — nothing from here on (including
   the incoming event itself) may be placed at or above it, so the room is
   made before placement. Control events carry no level; they push
   [highest_level - 1], which raises nothing when displaced. *)
let window_make_room t =
  match t.window with
  | None -> ()
  | Some w -> (
      match Window.make_room w with
      | Some displaced ->
          if displaced + 1 > t.highest_level then
            t.highest_level <- displaced + 1
      | None -> ())

let window_admit t level =
  match t.window with
  | None -> ()
  | Some w -> (
      match Window.push w level with
      | Some _ -> assert false (* room was made at event entry *)
      | None -> ())

(* Place a value-creating operation: compute its completion level, update
   profile, live well and counters; returns the completion level. *)
let place t (e : Ddg_sim.Trace.event) =
  let ready =
    List.fold_left
      (fun acc loc ->
        max acc
          (Live_well.source_level t.live_well loc
             ~highest_level:t.highest_level))
      (t.highest_level - 1) e.srcs
  in
  let level = ready + t.config.latency e.op_class in
  let level =
    match e.dest with
    | Some dest when storage_dependencies_apply t.config dest -> (
        match Live_well.storage_constraint t.live_well dest with
        | Some d -> max level (d + 1)
        | None -> level)
    | Some _ | None -> level
  in
  let level =
    if Resources.unlimited t.resources then level
    else Resources.place t.resources e.op_class level
  in
  Profile.add t.profile level;
  t.placed <- t.placed + 1;
  if level > t.deepest_level then t.deepest_level <- level;
  List.iter (fun loc -> Live_well.record_use t.live_well loc ~level) e.srcs;
  (match e.dest with
  | Some dest -> (
      match Live_well.define t.live_well dest ~level with
      | Some r -> retire t r
      | None -> ())
  | None -> ());
  level

(* A conservative system call is a firewall: it is placed immediately
   after the deepest computation yet, and the level following it becomes
   the new topologically highest placeable level. *)
let place_syscall_conservative t (e : Ddg_sim.Trace.event) =
  let level = t.deepest_level + t.config.latency e.op_class in
  let level = max level t.highest_level in
  Profile.add t.profile level;
  t.placed <- t.placed + 1;
  if level > t.deepest_level then t.deepest_level <- level;
  List.iter
    (fun loc ->
      let (_ : int) =
        Live_well.source_level t.live_well loc ~highest_level:t.highest_level
      in
      Live_well.record_use t.live_well loc ~level)
    e.srcs;
  (match e.dest with
  | Some dest -> (
      match Live_well.define t.live_well dest ~level with
      | Some r -> retire t r
      | None -> ())
  | None -> ());
  t.highest_level <- level + 1;
  level

(* A mispredicted branch stalls fetch until it resolves: a firewall at the
   branch's resolution level (its sources' readiness plus one step). *)
let handle_branch t (e : Ddg_sim.Trace.event) taken =
  if
    (not (Branch_pred.predicts_perfectly t.predictor))
    && Branch_pred.mispredicted t.predictor ~pc:e.pc ~taken
  then begin
    t.mispredicts <- t.mispredicts + 1;
    let ready =
      List.fold_left
        (fun acc loc ->
          max acc
            (Live_well.source_level t.live_well loc
               ~highest_level:t.highest_level))
        (t.highest_level - 1) e.srcs
    in
    let resolve = ready + 1 in
    if resolve > t.highest_level then t.highest_level <- resolve
  end

let feed t (e : Ddg_sim.Trace.event) =
  t.events <- t.events + 1;
  window_make_room t;
  match e.op_class with
  | Opclass.Control ->
      (match e.branch with
      | Some { taken } -> handle_branch t e taken
      | None -> ());
      window_admit t (t.highest_level - 1)
  | Opclass.Syscall ->
      t.syscalls <- t.syscalls + 1;
      if t.config.syscall_stall then
        window_admit t (place_syscall_conservative t e)
      else
        (* optimistic: the system call is assumed to modify nothing and is
           ignored entirely *)
        window_admit t (t.highest_level - 1)
  | Opclass.Int_alu | Opclass.Int_multiply | Opclass.Int_divide
  | Opclass.Fp_add_sub | Opclass.Fp_multiply | Opclass.Fp_divide
  | Opclass.Load_store ->
      window_admit t (place t e)

let evict t loc =
  match Live_well.remove t.live_well loc with
  | Some r -> retire t r
  | None -> ()

let live_well_size t = Live_well.size t.live_well

let finish t =
  List.iter (retire t) (Live_well.retire_all t.live_well);
  let critical_path = t.deepest_level + 1 in
  {
    events = t.events;
    placed_ops = t.placed;
    syscalls = t.syscalls;
    critical_path;
    available_parallelism =
      (if critical_path = 0 then 0.0
       else float_of_int t.placed /. float_of_int critical_path);
    profile = t.profile;
    storage_profile = Intervals.to_profile t.liveness;
    lifetimes = t.lifetimes;
    sharing = t.sharing;
    live_locations = Live_well.size t.live_well;
    mispredicts = t.mispredicts;
  }

let analyze config trace =
  let t = create config in
  Ddg_sim.Trace.iter (feed t) trace;
  finish t

let pp_stats ppf (s : stats) =
  Format.fprintf ppf
    "@[<v>events               %d@,placed ops           %d@,\
     system calls         %d@,critical path length %d@,\
     available parallelism %.2f@,live locations       %d@,\
     mispredicted branches %d@]"
    s.events s.placed_ops s.syscalls s.critical_path
    s.available_parallelism s.live_locations s.mispredicts
