type t = {
  levels : int array;
  mutable head : int;  (* slot of the oldest entry *)
  mutable len : int;
}

let create w =
  if w < 1 then invalid_arg "Window.create: size must be >= 1";
  { levels = Array.make w 0; head = 0; len = 0 }

let capacity t = Array.length t.levels
let length t = t.len

let make_room t =
  if t.len < Array.length t.levels then None
  else begin
    let displaced = t.levels.(t.head) in
    t.head <- (t.head + 1) mod Array.length t.levels;
    t.len <- t.len - 1;
    Some displaced
  end

let push t level =
  let displaced = make_room t in
  let cap = Array.length t.levels in
  t.levels.((t.head + t.len) mod cap) <- level;
  t.len <- t.len + 1;
  displaced
