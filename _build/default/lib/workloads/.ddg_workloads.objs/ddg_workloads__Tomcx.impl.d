lib/workloads/tomcx.ml: Printf Workload
