lib/workloads/mtxx.ml: Printf Workload
