lib/workloads/cc1x.ml: Printf Workload
