lib/workloads/registry.ml: Cc1x Doducx Eqnx Espx Fpx List Mtxx Naskx Spicex Tomcx Workload Xlispx
