lib/workloads/eqnx.ml: Printf Workload
