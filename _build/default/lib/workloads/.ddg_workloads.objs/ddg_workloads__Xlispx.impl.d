lib/workloads/xlispx.ml: List Printf String Workload
