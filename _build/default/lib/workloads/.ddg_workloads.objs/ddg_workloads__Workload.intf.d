lib/workloads/workload.mli: Ddg_asm Ddg_sim
