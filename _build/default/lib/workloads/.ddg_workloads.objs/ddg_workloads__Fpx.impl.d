lib/workloads/fpx.ml: Buffer Printf Workload
