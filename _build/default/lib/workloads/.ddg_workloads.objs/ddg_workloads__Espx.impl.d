lib/workloads/espx.ml: Printf Workload
