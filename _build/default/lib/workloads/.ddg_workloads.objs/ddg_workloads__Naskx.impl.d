lib/workloads/naskx.ml: Printf Workload
