lib/workloads/spicex.ml: Printf Workload
