lib/workloads/workload.ml: Ddg_minic Ddg_sim
