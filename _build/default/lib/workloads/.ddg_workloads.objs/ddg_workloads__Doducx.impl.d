lib/workloads/doducx.ml: Printf Workload
