(* xlisp analog: a bytecode interpreter interpreting an iterative program.

   The paper singles xlisp out: its Lisp input runs inside a [prog]
   construct, so the interpreter's virtual program counter re-introduces
   the control dependencies Paragraph normally removes, and available
   parallelism collapses to 13.3 — the lowest of the suite, essentially
   unchanged by any renaming. We reproduce the mechanism directly: a
   stack-based bytecode VM written in Mini-C whose fetched opcode decides
   every next step, so the virtual pc and stack pointer form serial
   recurrences threaded through memory and the dispatch chain.

   The interpreted program computes sum(i*i + 3i) for i in 1..K, repeated
   R times, using LOAD/STORE/arith/branch bytecodes. *)

let dims = function
  | Workload.Tiny -> (12, 2)
  | Workload.Default -> (110, 14)
  | Workload.Large -> (220, 25)

(* opcodes *)
let op_halt = 0
let op_push = 1   (* push immediate *)
let op_load = 2   (* push var[k] *)
let op_store = 3  (* pop into var[k] *)
let op_add = 4
let op_sub = 5
let op_mul = 6
let op_jlt = 7    (* pop b, pop a; if a < b jump to target *)
let op_jmp = 8
let op_dup = 9

let source size =
  let k, reps = dims size in
  (* Bytecode for:
       i = 1; acc = 0;
     loop:
       t = i * i + 3 * i
       acc = acc + t
       i = i + 1
       if i < K+1 goto loop
       halt
     vars: 0 = i, 1 = acc, 2 = scratch *)
  let code =
    [ (* 0 *) op_push; 1; op_store; 0;          (* i = 1 *)
      (* 4 *) op_push; 0; op_store; 1;          (* acc = 0 *)
      (* 8: loop *)
      op_load; 0; op_load; 0; op_mul;            (* i*i *)
      op_push; 3; op_load; 0; op_mul;            (* 3*i *)
      op_add; op_store; 2;                       (* t = i*i + 3i *)
      op_load; 1; op_load; 2; op_add; op_store; 1; (* acc += t *)
      op_load; 0; op_push; 1; op_add; op_store; 0; (* i += 1 *)
      op_load; 0; op_push; k + 1; op_jlt; 8;     (* if i < K+1 goto loop *)
      op_halt ]
  in
  let stores =
    String.concat "\n"
      (List.mapi (fun i b -> Printf.sprintf "  code[%d] = %d;" i b) code)
  in
  Printf.sprintf
    {|/* xlispx: bytecode interpreter (xlisp analog) */
int code[64];
int stack[32];
int vars[16];
int oplen[16];

void main() {
  int pc;
  int sp;
  int opc;
  int a;
  int b;
  int r;
  int total;
%s
  oplen[%d] = 2;   /* push */
  oplen[%d] = 2;   /* load */
  oplen[%d] = 2;   /* store */
  oplen[%d] = 1;   /* add */
  oplen[%d] = 1;   /* sub */
  oplen[%d] = 1;   /* mul */
  oplen[%d] = 1;   /* dup */
  total = 0;
  for (r = 0; r < %d; r = r + 1) {
    pc = 0;
    sp = 0;
    opc = code[pc];
    while (opc != %d) {
      if (opc == %d) {                   /* push */
        stack[sp] = code[pc + 1];
        sp = sp + 1;
      } else if (opc == %d) {            /* load */
        stack[sp] = vars[code[pc + 1]];
        sp = sp + 1;
      } else if (opc == %d) {            /* store */
        sp = sp - 1;
        vars[code[pc + 1]] = stack[sp];
      } else if (opc == %d) {            /* add */
        sp = sp - 1;
        stack[sp - 1] = stack[sp - 1] + stack[sp];
      } else if (opc == %d) {            /* sub */
        sp = sp - 1;
        stack[sp - 1] = stack[sp - 1] - stack[sp];
      } else if (opc == %d) {            /* mul */
        sp = sp - 1;
        stack[sp - 1] = stack[sp - 1] * stack[sp];
      } else if (opc == %d) {            /* jlt */
        sp = sp - 2;
        a = stack[sp];
        b = stack[sp + 1];
      } else if (opc == %d) {            /* jmp */
        pc = pc;
      } else {                           /* dup */
        stack[sp] = stack[sp - 1];
        sp = sp + 1;
      }
      /* table-driven advance, as threaded interpreters do: the virtual pc
         chains through a memory load every step */
      if (opc == %d) {
        if (a < b) pc = code[pc + 1]; else pc = pc + 2;
      } else if (opc == %d) {
        pc = code[pc + 1];
      } else {
        pc = pc + oplen[opc];
      }
      opc = code[pc];
    }
    total = (total + vars[1]) %% 1000000;
    /* the next run's program depends on this run's result: patch the
       initial loop-counter immediate (self-modifying bytecode), chaining
       the interpreter runs exactly as one long Lisp session would */
    code[1] = total %% 3 + 1;
    if (r %% 4 == 1) print_char(120);
  }
  print_char(10);
  print_int(total);
  print_char(10);
}
|}
    stores op_push op_load op_store op_add op_sub op_mul op_dup reps op_halt
    op_push op_load op_store op_add op_sub op_mul op_jlt op_jmp op_jlt op_jmp

let workload =
  {
    Workload.name = "xlispx";
    spec_analog = "xlisp";
    language_kind = "Int";
    description =
      "A stack-based bytecode VM interpreting an iterative summation \
       program: the virtual pc and stack pointer are serial recurrences, \
       reproducing the abstract-serial-machine effect that makes xlisp \
       the least parallel benchmark in the paper.";
    source;
    self_check =
      (fun size ->
        let k, reps = dims size in
        (* mirror the interpreted program, including the self-modifying
           initial counter *)
        let total = ref 0 and i0 = ref 1 and xs = ref 0 in
        for r = 0 to reps - 1 do
          let acc = ref 0 in
          for i = !i0 to k do
            acc := !acc + (i * i) + (3 * i)
          done;
          total := (!total + !acc) mod 1_000_000;
          i0 := (!total mod 3) + 1;
          if r mod 4 = 1 then incr xs
        done;
        Some (String.make !xs 'x' ^ "\n" ^ string_of_int !total ^ "\n"));
  }
