(* nasker analog: the NAS kernel collection.

   nasker (NAS kernels) mixes embarrassingly parallel vector kernels with
   first-order linear recurrences; the recurrences put long
   floating-point chains (6 DDG levels per link) on the critical path, so
   the available parallelism settles in the tens (paper: 51.0) even
   though most of the instruction mass is parallel. Arrays are global;
   register renaming already recovers nearly everything (paper: 50.8 regs
   vs 51.0 full). *)

let dims = function
  | Workload.Tiny -> (64, 1)
  | Workload.Default -> (1100, 3)
  | Workload.Large -> (2400, 4)

let source size =
  let n, reps = dims size in
  Printf.sprintf
    {|/* naskx: vector kernels + linear recurrences (nasker analog) */
float u[%d];
float v[%d];
float w[%d];

void main() {
  int i;
  int r;
  float s;
  float prev;
  for (i = 0; i < %d; i = i + 1) {
    v[i] = float_of_int(i %% 19) * 0.125;
    w[i] = float_of_int((i * 3) %% 23) * 0.0625;
  }
  for (r = 0; r < %d; r = r + 1) {
    /* k1: SAXPY-like elementwise (parallel) */
    for (i = 0; i < %d; i = i + 1) {
      u[i] = v[i] * 1.5 + w[i];
    }
    /* k2: banded 5-point smooth (parallel, wider expression) */
    for (i = 2; i < %d; i = i + 1) {
      u[i] = 0.25 * (v[i - 2] + v[i - 1] + v[i] + v[i + 1]) + 0.125 * w[i];
    }
    /* k3: first-order linear recurrence, vectorised by the compiler into
       four interleaved chains (serial FP chains on the critical path) */
    prev = 1.0;
    for (i = 0; i < %d; i = i + 2) {
      prev = prev * 0.5 + u[i] * 0.25;
      v[i] = prev;
      v[i + 1] = prev * 0.75 + u[i + 1] * 0.125;
    }
    /* k4: inner product, partially unrolled (four partial sums) */
    s = 0.0;
    for (i = 0; i < %d; i = i + 4) {
      s = s + ((u[i] * w[i] + u[i + 1] * w[i + 1])
             + (u[i + 2] * w[i + 2] + u[i + 3] * w[i + 3]));
    }
    w[0] = s * 0.001;
    /* k5: polynomial evaluation per element (parallel, deep per element) */
    for (i = 0; i < %d; i = i + 1) {
      w[i] = ((v[i] * 0.2 + 0.3) * v[i] + 0.5) * v[i] + 0.125;
    }
  }
  print_char(110);
  s = 0.0;
  for (i = 0; i < %d; i = i + 16) {
    s = s + v[i] + w[i];
  }
  print_char(10);
  print_float(s);
  print_char(10);
}
|}
    n n n n reps n (n - 2) n n n n

let workload =
  {
    Workload.name = "naskx";
    spec_analog = "nasker";
    language_kind = "FP";
    description =
      "Five vector kernels per sweep: SAXPY, 5-point smooth and polynomial \
       evaluation (parallel) against a first-order linear recurrence and \
       an inner product (serial FP chains) that pin the critical path.";
    source;
    self_check = (fun _ -> None);
  }
