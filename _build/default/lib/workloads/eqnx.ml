(* eqntott analog: bit-vector truth-table comparison.

   eqntott spends its time in doubly nested integer loops comparing
   bit-vector terms word by word (the famous cmppt routine). Parallelism
   is high because every term comparison is independent; the critical path
   is the two loop-counter recurrences (outer unrolled 2x, as the MIPS
   compiler would). Arrays are global (data segment): register renaming
   alone recovers most of the parallelism, matching the paper's eqntott
   row in Table 4 (532.7 regs / 782.5 full). *)

let dims = function
  | Workload.Tiny -> (24, 8)
  | Workload.Default -> (420, 44)
  | Workload.Large -> (900, 64)

let source size =
  let terms, words = dims size in
  Printf.sprintf
    {|/* eqnx: bit-vector term comparison (eqntott analog) */
int pt[%d];
int qt[%d];
int order[%d];
int sums[64];

void main() {
  int t;
  int w;
  int base;
  int acc;
  int x;
  int y;
  int d;
  for (t = 0; t < %d; t = t + 1) {
    for (w = 0; w < %d; w = w + 1) {
      pt[t * %d + w] = (t * 40503 + w * 30011) & 65535;
      qt[t * %d + w] = (t * 9377 + w * 52511) & 65535;
    }
  }
  /* compare every term against its successor, two terms per iteration */
  for (t = 0; t < %d; t = t + 2) {
    base = t * %d;
    acc = 0;
    for (w = 0; w < %d; w = w + 1) {
      x = pt[base + w];
      y = qt[base + w];
      d = ((x >> 8) & 15) - ((y >> 8) & 15);
      if (d < 0) d = -d;
      acc = acc + d + ((x & 15) << 1) - (y & 15);
    }
    order[t] = acc;
    base = (t + 1) * %d;
    acc = 0;
    for (w = 0; w < %d; w = w + 1) {
      x = pt[base + w];
      y = qt[base + w];
      d = ((x >> 8) & 15) - ((y >> 8) & 15);
      if (d < 0) d = -d;
      acc = acc + d + ((x & 15) << 1) - (y & 15);
    }
    order[t + 1] = acc;
    if (t %% 256 == 128) print_char(35);
  }
  /* bucketed reduction: 64 independent accumulation chains */
  for (w = 0; w < 64; w = w + 1) sums[w] = 0;
  for (t = 0; t < %d; t = t + 1) {
    sums[t & 63] = sums[t & 63] + order[t];
  }
  acc = 0;
  for (w = 0; w < 64; w = w + 1) acc = acc + sums[w];
  print_char(10);
  print_int(acc);
  print_char(10);
}
|}
    (terms * words) (terms * words) terms terms words words words terms words
    words words words terms

let workload =
  {
    Workload.name = "eqnx";
    spec_analog = "eqntott";
    language_kind = "Int";
    description =
      "Doubly nested integer bit-vector comparisons over global arrays; \
       independent term comparisons bounded by loop-counter recurrences, \
       with a 64-way bucketed final reduction.";
    source;
    self_check = (fun _ -> None);
  }
