(* espresso analog: two-level logic cover manipulation.

   espresso manipulates covers of cubes represented as bit-vectors:
   pairwise cube intersection/containment checks with data-dependent
   branches and running cover statistics. Parallelism is moderate: pair
   checks are independent, but the cover-statistics accumulators form
   integer chains that bound the DDG depth well below the eqntott level
   (paper: 133.0 full renaming, 42.5 with registers only — the cube cover
   itself is rewritten in the data segment, so memory renaming matters). *)

let dims = function
  | Workload.Tiny -> (12, 4)
  | Workload.Default -> (72, 8)
  | Workload.Large -> (128, 10)

let source size =
  let cubes, words = dims size in
  Printf.sprintf
    {|/* espx: cube cover manipulation (espresso analog) */
int cover[%d];
int tally[8];

int contains(int i, int j) {
  int w;
  int ok;
  int a;
  int b;
  ok = 1;
  for (w = 0; w < %d; w = w + 1) {
    a = cover[i * %d + w];
    b = cover[j * %d + w];
    /* i contains j iff j's bits are a subset of i's */
    if ((a | b) != a) ok = 0;
  }
  return ok;
}

void main() {
  int i;
  int j;
  int w;
  int covered;
  int distance;
  int a;
  int b;
  for (i = 0; i < %d; i = i + 1) {
    for (w = 0; w < %d; w = w + 1) {
      cover[i * %d + w] = (i * 2654435 + w * 40503) & 8191;
    }
  }
  for (w = 0; w < 8; w = w + 1) tally[w] = 0;
  /* pairwise sweep: distance and containment statistics */
  for (i = 0; i < %d; i = i + 1) {
    for (j = 0; j < %d; j = j + 1) {
      if (i != j) {
        distance = 0;
        for (w = 0; w < %d; w = w + 1) {
          a = cover[i * %d + w];
          b = cover[j * %d + w];
          distance = distance + ((a ^ b) & 1) + (((a ^ b) >> 1) & 1)
                   + (((a ^ b) >> 6) & 1);
        }
        tally[distance & 7] = tally[distance & 7] + 1;
        if (distance == 0) {
          covered = contains(i, j);
          tally[7] = tally[7] + covered;
        }
      }
    }
    /* shrink the cover in place: rewrite row i (data-segment reuse) */
    for (w = 0; w < %d; w = w + 1) {
      cover[i * %d + w] = (cover[i * %d + w] * 3 + 1) & 8191;
    }
    if ((i & 15) == 0) print_char(64);
  }
  covered = 0;
  for (w = 0; w < 8; w = w + 1) covered = covered + tally[w] * (w + 1);
  print_char(10);
  print_int(covered);
  print_char(10);
}
|}
    (cubes * words) words words words cubes words words cubes cubes words
    words words words words words

let workload =
  {
    Workload.name = "espx";
    spec_analog = "espresso";
    language_kind = "Int";
    description =
      "Pairwise cube distance/containment sweeps over a global cover that \
       is rewritten in place; moderate parallelism bounded by tally \
       accumulator chains and cover reuse.";
    source;
    self_check = (fun _ -> None);
  }
