(* spice2g6 analog: sparse-matrix circuit iteration.

   spice spends its time in sparse LU/solve sweeps: indirection through
   integer index arrays into double-precision values, with row updates
   folding back into the solution vector. We build a banded-random sparse
   matrix in CSR-like global arrays and run Jacobi sweeps: rows are
   independent within a sweep, sweeps chain through the solution vector,
   and the vector is rewritten in the data segment every sweep — so full
   memory renaming is needed for the top parallelism, matching the
   paper's spice row (39.7 regs / 57.4 regs+stack / 111.5 full). *)

let dims = function
  | Workload.Tiny -> (24, 2)
  | Workload.Default -> (460, 6)
  | Workload.Large -> (900, 8)

let nnz_per_row = 9

let source size =
  let rows, sweeps = dims size in
  let nnz = rows * nnz_per_row in
  Printf.sprintf
    {|/* spicex: sparse Jacobi circuit sweeps (spice2g6 analog) */
int colidx[%d];
float aval[%d];
float x[%d];
float xnew[%d];
float rhs[%d];

void main() {
  int i;
  int k;
  int s;
  int base;
  float acc;
  float diag;
  /* banded-random pattern: diagonal plus 8 hashed off-band entries */
  for (i = 0; i < %d; i = i + 1) {
    base = i * %d;
    colidx[base] = i;
    aval[base] = 4.0 + float_of_int(i %% 5) * 0.25;
    for (k = 1; k < %d; k = k + 1) {
      colidx[base + k] = (i + k * k * 7 + i * k) %% %d;
      aval[base + k] = 0.125 + float_of_int((i + 3 * k) %% 11) * 0.03125;
    }
    x[i] = 1.0;
    rhs[i] = float_of_int(i %% 13) * 0.5 + 1.0;
  }
  for (s = 0; s < %d; s = s + 1) {
    for (i = 0; i < %d; i = i + 1) {
      base = i * %d;
      diag = aval[base];
      acc = rhs[i];
      for (k = 1; k < %d; k = k + 1) {
        acc = acc - aval[base + k] * x[colidx[base + k]];
      }
      xnew[i] = acc / diag;
    }
    /* write the solution back (data-segment reuse every sweep) */
    for (i = 0; i < %d; i = i + 1) {
      x[i] = xnew[i];
    }
    if (s %% 3 == 1) print_char(115);
  }
  acc = 0.0;
  for (i = 0; i < %d; i = i + 8) {
    acc = acc + x[i];
  }
  print_char(10);
  print_float(acc);
  print_char(10);
}
|}
    nnz nnz rows rows rows rows nnz_per_row nnz_per_row rows sweeps rows
    nnz_per_row nnz_per_row rows rows

let workload =
  {
    Workload.name = "spicex";
    spec_analog = "spice2g6";
    language_kind = "Int and FP";
    description =
      "Jacobi sweeps over a banded-random sparse matrix in CSR form: \
       integer indirection feeding FP row reductions, with the solution \
       vector rewritten in the data segment each sweep.";
    source;
    self_check = (fun _ -> None);
  }
