(* cc1 (GCC) analog: expression-tree constant folding with a symbol table.

   cc1's profile is table-driven integer code over linked IR nodes:
   pointer chasing, recursive tree walks, hash-table probes, a bump
   allocator whose frontier is a serial recurrence, and the most frequent
   system calls of the suite (one per ~15k instructions). We build random
   expression trees in a node pool (bump-allocated), fold each
   recursively, intern results in a linear-probing symbol table, and emit
   a progress character regularly. Parallelism is low (paper: 36.2
   conservative, 53.0 optimistic — the largest syscall effect in Table 3),
   because the allocator frontier, the shared table and the per-tree walk
   chains keep the DDG narrow. *)

let trees = function
  | Workload.Tiny -> 30
  | Workload.Default -> 340
  | Workload.Large -> 900

let pool_nodes = 64        (* nodes per tree region, reused per tree *)
let table_size = 512

let source size =
  let t = trees size in
  Printf.sprintf
    {|/* cc1x: IR constant folding (cc1 analog) */
int op[%d];
int lhs[%d];
int rhs[%d];
int val[%d];
int table[%d];
int chars[256];
int freeptr = 0;

/* bump-allocate one IR node: the allocator frontier is a serial chain */
int alloc(int o, int l, int r, int v) {
  int n;
  n = freeptr;
  freeptr = freeptr + 1;
  op[n] = o;
  lhs[n] = l;
  rhs[n] = r;
  val[n] = v;
  return n;
}

/* build a random expression tree of the given depth; returns node id */
int build(int depth, int seed) {
  int l;
  int r;
  if (depth == 0) {
    return alloc(0, 0, 0, seed %% 100);
  }
  l = build(depth - 1, seed * 3 + 1);
  r = build(depth - 1, seed * 5 + 2);
  return alloc(1 + seed %% 3, l, r, 0);
}

/* recursive constant folder */
int fold(int n) {
  int a;
  int b;
  int o;
  o = op[n];
  if (o == 0) return val[n];
  a = fold(lhs[n]);
  b = fold(rhs[n]);
  if (o == 1) return (a + b + (a - b) * 3 + a * 5) %% 8191;
  if (o == 2) return (a * 13 + b * 7 + (a + b) * 2) %% 8191;
  return (a - b + (b - a) * 4 + a * 2 + b * 3 + 16382) %% 8191;
}

/* intern a folded constant: linear probing over a shared table; returns
   the number of probes so the caller can fold it into its own stats */
int intern(int v) {
  int h;
  int probes;
  h = (v * 2654435) & %d;
  probes = 0;
  while (table[h] != 0 && table[h] != v + 1 && probes < 16) {
    h = (h + 1) & %d;
    probes = probes + 1;
  }
  table[h] = v + 1;
  return probes;
}

/* token-scan phase: classify a pseudo-source buffer, like cc1's lexer;
   independent of the tree fold, unrolled four ways */
int scan(int seed) {
  int p;
  int c;
  int idents;
  idents = 0;
  for (p = 0; p < 64; p = p + 4) {
    c = (seed + p * 37) & 127;
    if (c > 64) idents = idents + 1;
    c = (seed + (p + 1) * 37) & 127;
    if (c > 64) idents = idents + 1;
    c = (seed + (p + 2) * 37) & 127;
    if (c > 64) idents = idents + 1;
    c = (seed + (p + 3) * 37) & 127;
    if (c > 64) idents = idents + 1;
  }
  return idents;
}

void main() {
  int i;
  int root;
  int folded;
  int check;
  int probes;
  int idents;
  for (i = 0; i < %d; i = i + 1) table[i] = 0;
  check = 0;
  probes = 0;
  idents = 0;
  for (i = 0; i < %d; i = i + 1) {
    freeptr = 0;             /* reuse the node pool per tree */
    root = build(4, i * 7 + 3);
    folded = fold(root);
    probes = probes + intern(folded);
    idents = idents + scan(i * 131 + folded);
    check = check + folded;
    if (check > 65535) check = check - 65536;
    if (i %% 24 == 0) print_char(99);   /* frequent syscalls, like cc1 */
  }
  print_char(10);
  print_int(check);
  print_char(32);
  print_int(probes + idents);
  print_char(10);
}
|}
    pool_nodes pool_nodes pool_nodes pool_nodes table_size (table_size - 1)
    (table_size - 1) table_size t

let workload =
  {
    Workload.name = "cc1x";
    spec_analog = "cc1";
    language_kind = "Int";
    description =
      "Bump-allocated expression trees folded recursively and interned in \
       a linear-probing symbol table; allocator frontier, shared-table and \
       tree-walk chains keep parallelism low, and syscalls are the most \
       frequent of the suite.";
    source;
    self_check = (fun _ -> None);
  }
