(** The workload registry: all ten SPEC'89-analog programs (paper
    Table 2), in the paper's alphabetical order. *)

val all : Workload.t list

val find : string -> Workload.t option
(** Look up a workload by its short name (e.g. ["mtxx"]). *)

val names : string list
