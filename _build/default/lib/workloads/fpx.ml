(* fpppp analog: enormous straight-line floating-point basic blocks.

   fpppp's defining property is two-electron-integral routines whose basic
   blocks contain hundreds of FLOPs with wide, shallow dependence
   structure — and far more live values than 32 registers, so the
   compiled code stages heavily through memory. Its FORTRAN temporaries
   are statically allocated: the staging storage is in the DATA segment,
   which is why the paper's fpppp needs full memory renaming for its
   1999.9 (registers alone give 18.3, stack renaming 81.3).

   We reproduce that structure directly: every pair evaluation stages its
   parameters through a reused global table ([stage], data segment),
   combines them through a reused stack spill buffer ([sbuf]) and eight
   register temporaries, and folds into a reused output table. The
   statement block is generated programmatically — wide waves, bounded
   coefficients — and the pair loop is doubly nested so the counter
   recurrences stay off the critical path. *)

let pairs = function
  | Workload.Tiny -> (8, 4)
  | Workload.Default -> (260, 8)
  | Workload.Large -> (700, 8)

let n_stage = 12
let n_sbuf = 8

(* Deterministic generated waves; coefficient magnitudes keep every value
   bounded by the seeds. *)
let gen_waves () =
  let state = ref 0x13579B in
  let rand bound =
    state := (!state * 1103515245) + 12345;
    (!state lsr 16) land 0xffff mod bound
  in
  let buf = Buffer.create 4096 in
  (* wave 0: stage the pair parameters (global table, written at the head
     of every pair evaluation) *)
  for k = 0 to n_stage - 1 do
    let c1 = 0.125 +. (0.03125 *. float_of_int (rand 8)) in
    let c2 = 0.4375 -. (0.03125 *. float_of_int (rand 8)) in
    match rand 3 with
    | 0 ->
        Buffer.add_string buf
          (Printf.sprintf "      stage[%d] = p * %.6f + q * %.6f;\n" k c1 c2)
    | 1 ->
        Buffer.add_string buf
          (Printf.sprintf "      stage[%d] = (p - q) * %.6f + %.6f;\n" k c1 c2)
    | _ ->
        Buffer.add_string buf
          (Printf.sprintf "      stage[%d] = p * q * %.6f - q * %.6f;\n" k c1
             c2)
  done;
  (* wave 1: combine stage entries through the stack spill buffer *)
  for k = 0 to n_sbuf - 1 do
    let a = rand n_stage and b = rand n_stage and c = rand n_stage in
    Buffer.add_string buf
      (Printf.sprintf
         "      sbuf[%d] = (stage[%d] + stage[%d]) * 0.25 + stage[%d] * 0.125;\n"
         k a b c)
  done;
  (* wave 2: register temporaries over the spill buffer *)
  for k = 0 to 7 do
    let a = rand n_sbuf and b = rand n_sbuf in
    let c1 = 0.25 +. (0.03125 *. float_of_int (rand 8)) in
    match rand 3 with
    | 0 ->
        Buffer.add_string buf
          (Printf.sprintf "      t%d = sbuf[%d] * %.6f + sbuf[%d] * 0.1875;\n"
             k a c1 b)
    | 1 ->
        Buffer.add_string buf
          (Printf.sprintf
             "      t%d = sbuf[%d] / (sbuf[%d] * sbuf[%d] * 0.0625 + 1.5);\n"
             k a b b)
    | _ ->
        Buffer.add_string buf
          (Printf.sprintf "      t%d = (sbuf[%d] - sbuf[%d]) * %.6f;\n" k a b
             c1)
  done;
  Buffer.contents buf

let source size =
  let outer, inner = pairs size in
  let waves = gen_waves () in
  Printf.sprintf
    {|/* fpx: straight-line FP integral blocks (fpppp analog) */
float stage[%d];
float out[64];

void main() {
  float sbuf[%d];
  int i;
  int k;
  int pair;
  float p;
  float q;
  float t0; float t1; float t2; float t3;
  float t4; float t5; float t6; float t7;
  float acc;
  for (i = 0; i < 64; i = i + 1) out[i] = 0.0;
  for (i = 0; i < %d; i = i + 1) {
    for (k = 0; k < %d; k = k + 1) {
      pair = i * %d + k;
      p = float_of_int(pair %% 17) * 0.125;
      q = float_of_int(pair %% 13) * 0.25 + 0.5;
%s
      out[pair %% 64] = ((t0 + t1) + (t2 + t3)) * 0.25
                      + ((t4 + t5) + (t6 + t7)) * 0.125;
    }
    if (i %% 64 == 0) print_char(42);
  }
  acc = 0.0;
  for (i = 0; i < 64; i = i + 4) {
    acc = acc + out[i];
  }
  print_char(10);
  print_float(acc);
  print_char(10);
}
|}
    n_stage n_sbuf outer inner inner waves

let workload =
  {
    Workload.name = "fpx";
    spec_analog = "fpppp";
    language_kind = "FP";
    description =
      "Generated straight-line FP integral blocks staged through a reused \
       global parameter table, a reused stack spill buffer and register \
       temporaries; wide per-pair parallelism that requires full memory \
       renaming to expose, like fpppp.";
    source;
    self_check = (fun _ -> None);
  }
