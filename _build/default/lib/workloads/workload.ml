type size = Tiny | Default | Large

type t = {
  name : string;
  spec_analog : string;
  language_kind : string;
  description : string;
  source : size -> string;
  self_check : size -> string option;
}

let program t size = Ddg_minic.Driver.compile (t.source size)

let trace ?(max_instructions = 100_000_000) t size =
  Ddg_sim.Machine.run_to_trace ~max_instructions (program t size)

let size_to_string = function
  | Tiny -> "tiny"
  | Default -> "default"
  | Large -> "large"
