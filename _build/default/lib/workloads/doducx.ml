(* doduc analog: Monte-Carlo nuclear reactor kinetics.

   doduc simulates reactor time steps with branchy double-precision
   physics per event. Each event here derives an independent seed (hash of
   the index, not a serial LCG — doduc's events carry substantial
   per-event work), runs a short fixed-point refinement loop with
   data-dependent branching, and folds the result into per-cell state.
   Parallelism is moderate (paper: 103.6): events overlap in a staircase
   limited by the event-counter recurrence, and register renaming alone
   recovers only part of it (paper: 30.0 regs / 103.6 regs+stack) because
   intermediate state spills to the frame. *)

let events = function
  | Workload.Tiny -> 48
  | Workload.Default -> 1500
  | Workload.Large -> 4000

let source size =
  let m = events size in
  Printf.sprintf
    {|/* doducx: Monte-Carlo event kinetics (doduc analog) */
float cell[128];

float refine(float x0, float flux) {
  /* Newton-like refinement with data-dependent early exit */
  float x;
  float fx;
  float step;
  int k;
  x = x0;
  for (k = 0; k < 6; k = k + 1) {
    fx = x * x * 0.25 + x * 0.5 - flux;
    step = fx / (x * 0.5 + 0.5 + 0.03125);
    x = x - step;
    if (step < 0.0001 && step > -0.0001) k = 6;
  }
  return x;
}

void main() {
  int e;
  int seed;
  int cidx;
  float flux;
  float x;
  float absorb;
  float leak;
  float t1;
  float t2;
  for (e = 0; e < 128; e = e + 1) cell[e] = 1.0;
  for (e = 0; e < %d; e = e + 1) {
    /* independent per-event seed: hashed index */
    seed = (e * 2654435 + 40503) %% 1048576;
    cidx = seed %% 128;
    flux = float_of_int(seed %% 97) * 0.0625 + 0.5;
    x = refine(1.0, flux);
    t1 = x * 0.8125 + flux * 0.0625;
    t2 = x * x * 0.03125;
    if (seed %% 3 == 0) {
      absorb = t1 * 0.25 + t2;
      leak = t1 - t2 * 0.5;
    } else {
      if (seed %% 3 == 1) {
        absorb = t1 * 0.125 - t2 * 0.25;
        leak = t1 * 0.5 + t2;
      } else {
        absorb = (t1 + t2) * 0.1875;
        leak = (t1 - t2) * 0.375;
      }
    }
    cell[cidx] = cell[cidx] * 0.9375 + absorb * 0.0625 + leak * 0.03125;
    if (e %% 500 == 250) print_char(100);
  }
  t1 = 0.0;
  for (e = 0; e < 128; e = e + 1) t1 = t1 + cell[e];
  print_char(10);
  print_float(t1);
  print_char(10);
}
|}
    m

let workload =
  {
    Workload.name = "doducx";
    spec_analog = "doduc";
    language_kind = "FP";
    description =
      "Independent Monte-Carlo events, each running a branchy Newton \
       refinement and folding into hashed per-cell state; moderate \
       parallelism limited by the event-counter staircase and per-cell \
       read-modify-write chains.";
    source;
    self_check = (fun _ -> None);
  }
