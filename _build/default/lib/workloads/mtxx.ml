(* matrix300 analog: dense matrix multiply on stack-allocated arrays.

   Dependency character targeted (paper Tables 3/4): the highest available
   parallelism of the suite — a triply nested loop whose inner dot products
   are all independent, so the critical path is set by the three loop-
   counter recurrences rather than by the O(N^3) work.

   Two stack-resident temporaries are reused for every column, exactly
   like the staging/spill storage the 1992 MIPS compiler generated for
   matrix300's blocked inner loops: [bcol] stages the B column at the
   {e head} of each column's computation and [tmp] collects its results.
   Without stack renaming, the next column's staging writes must wait for
   the previous column's deepest reads, serialising the columns —
   reproducing the paper's matrix300 row (1235.7 with registers renamed
   vs 23302.6 with memory renaming). *)

let dims = function
  | Workload.Tiny -> (8, false)
  | Workload.Default -> (44, true)
  | Workload.Large -> (48, true)

let source size =
  let n, unrolled = dims size in
  let inner =
    if unrolled then
      (* the MIPS compiler's loop unrolling, by hand: four products per
         iteration shrink the k-counter recurrence, and pairing the adds
         keeps the accumulator chain at one add per iteration. The
         accumulator is the stack-resident column temporary itself — the
         SAXPY-style formulation the original matrix300 uses — so without
         stack renaming the columns serialise through it. *)
      Printf.sprintf
        {|      for (k = 0; k < %d; k = k + 4) {
        tmp[i] = tmp[i] + ((a[i * %d + k] * bcol[k] + a[i * %d + k + 1] * bcol[k + 1])
               + (a[i * %d + k + 2] * bcol[k + 2] + a[i * %d + k + 3] * bcol[k + 3]));
      }|}
        n n n n n
    else
      Printf.sprintf
        {|      for (k = 0; k < %d; k = k + 1) {
        tmp[i] = tmp[i] + a[i * %d + k] * bcol[k];
      }|}
        n n
  in
  Printf.sprintf
    {|/* mtxx: dense matrix multiply (matrix300 analog) */
void main() {
  float a[%d];
  float b[%d];
  float c[%d];
  float bcol[%d];
  float tmp[%d];
  int i;
  int j;
  int k;
  float s;
  for (i = 0; i < %d; i = i + 1) {
    for (j = 0; j < %d; j = j + 1) {
      a[i * %d + j] = float_of_int((i + 2 * j) %% 7) * 0.25;
      b[i * %d + j] = float_of_int((3 * i + j) %% 5) * 0.5;
    }
  }
  for (j = 0; j < %d; j = j + 1) {
    /* stage column j of b (stack reuse at the head of the column) */
    for (k = 0; k < %d; k = k + 1) {
      bcol[k] = b[k * %d + j];
    }
    for (i = 0; i < %d; i = i + 1) {
      tmp[i] = 0.0;
%s
    }
    for (i = 0; i < %d; i = i + 1) {
      c[i * %d + j] = tmp[i];
    }
    if (j %% 16 == 8) print_char(46);
  }
  s = 0.0;
  for (i = 0; i < %d; i = i + 4) {
    s = s + c[i * %d + i];
  }
  print_char(10);
  print_float(s);
  print_char(10);
}
|}
    (n * n) (n * n) (n * n) n n n n n n n n n n inner n n n n

let workload =
  {
    Workload.name = "mtxx";
    spec_analog = "matrix300";
    language_kind = "FP";
    description =
      "Dense matrix multiply over stack-allocated matrices with reused \
       column staging and result temporaries; near-unbounded dataflow \
       parallelism bounded only by loop-counter recurrences, collapsing \
       without stack renaming.";
    source;
    self_check = (fun _ -> None);
  }
