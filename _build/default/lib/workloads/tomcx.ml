(* tomcatv analog: 2-D mesh relaxation over stack-allocated grids.

   Dependency character: very high parallelism — every interior cell of a
   sweep is independent — limited by the sweep-to-sweep copy chain and the
   row/column counter recurrences.

   The real tomcatv loop body keeps dozens of doubles live at once, far
   more than 32 registers, so the 1992 MIPS compiler spilled aggressively
   to the stack; those spill slots are rewritten every cell. We model the
   spills with a small stack-resident staging buffer written at the head
   of each cell's computation: without stack renaming consecutive cells
   serialise through it, reproducing the paper's tomcatv row (66.6 with
   registers renamed vs 5772.4 once the stack is renamed too). *)

let dims = function
  | Workload.Tiny -> (10, 2)
  | Workload.Default -> (40, 3)
  | Workload.Large -> (72, 4)

let source size =
  let n, steps = dims size in
  Printf.sprintf
    {|/* tomcx: 2-D mesh relaxation (tomcatv analog) */
void main() {
  float x[%d];
  float y[%d];
  float rx[%d];
  float ry[%d];
  float spill[8];
  int i;
  int j;
  int it;
  float dxx;
  float dyy;
  for (i = 0; i < %d; i = i + 1) {
    for (j = 0; j < %d; j = j + 1) {
      x[i * %d + j] = float_of_int(i) * 0.1 + float_of_int((i * j) %% 9) * 0.01;
      y[i * %d + j] = float_of_int(j) * 0.1 + float_of_int((i + j) %% 7) * 0.02;
    }
  }
  for (it = 0; it < %d; it = it + 1) {
    for (i = 1; i < %d; i = i + 1) {
      for (j = 1; j < %d; j = j + 1) {
        /* spill-slot staging of the stencil neighbourhood (stack reuse
           at the head of every cell) */
        spill[0] = x[(i - 1) * %d + j];
        spill[1] = x[(i + 1) * %d + j];
        spill[2] = x[i * %d + j - 1];
        spill[3] = x[i * %d + j + 1];
        spill[4] = y[(i - 1) * %d + j];
        spill[5] = y[(i + 1) * %d + j];
        spill[6] = y[i * %d + j - 1];
        spill[7] = y[i * %d + j + 1];
        dxx = (spill[0] + spill[1]) + (spill[2] + spill[3])
            - 4.0 * x[i * %d + j];
        dyy = (spill[4] + spill[5]) + (spill[6] + spill[7])
            - 4.0 * y[i * %d + j];
        rx[i * %d + j] = x[i * %d + j] + 0.125 * dxx + 0.0625 * dxx * dyy;
        ry[i * %d + j] = y[i * %d + j] + 0.125 * dyy - 0.0625 * dxx * dyy;
      }
    }
    for (i = 1; i < %d; i = i + 1) {
      for (j = 1; j < %d; j = j + 1) {
        x[i * %d + j] = rx[i * %d + j];
        y[i * %d + j] = ry[i * %d + j];
      }
    }
    print_char(43);
  }
  dxx = 0.0;
  for (i = 1; i < %d; i = i + 4) {
    dxx = dxx + x[i * %d + i] + y[i * %d + i];
  }
  print_char(10);
  print_float(dxx);
  print_char(10);
}
|}
    (n * n) (n * n) (n * n) (n * n) n n n n steps (n - 1) (n - 1) n n n n n n
    n n n n n n n n (n - 1) (n - 1) n n n n (n - 1) n n

let workload =
  {
    Workload.name = "tomcx";
    spec_analog = "tomcatv";
    language_kind = "FP";
    description =
      "Jacobi-style 2-D mesh relaxation with two stack-resident grids \
       rewritten each sweep and spill-slot staging per cell; per-sweep \
       cells are fully independent once stack storage is renamed.";
    source;
    self_check = (fun _ -> None);
  }
