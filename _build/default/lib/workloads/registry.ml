let all =
  [ Cc1x.workload;
    Doducx.workload;
    Eqnx.workload;
    Espx.workload;
    Fpx.workload;
    Mtxx.workload;
    Naskx.workload;
    Spicex.workload;
    Tomcx.workload;
    Xlispx.workload ]

let find name = List.find_opt (fun w -> w.Workload.name = name) all

let names = List.map (fun w -> w.Workload.name) all
